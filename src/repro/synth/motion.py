"""Jump choreography: keyframe scripts and frame-by-frame motion synthesis.

A :class:`JumpScript` is a list of pose keyframes, each held for a few
frames and blended into the next.  :func:`run_script` turns a script into a
sequence of :class:`MotionFrame` objects — joint angles, pelvis position,
ground-truth pose and stage per frame — planting the feet during ground
stages and flying the pelvis along a ballistic parabola while airborne.

A complete jump is "about 40 frames" in the paper; the default scripts land
in the low 40s and the dataset generator jitters hold durations to match
the paper's exact clip lengths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.poses import Pose, Stage
from repro.errors import ConfigurationError
from repro.geometry.points import Point
from repro.synth.body import BodyDimensions, JointAngles, lowest_point_offset
from repro.synth.posture import posture_for_pose


@dataclass(frozen=True)
class ScriptStep:
    """One keyframe: a pose held for ``hold`` frames, then ``transition``
    frames blending linearly toward the next keyframe's posture."""

    pose: Pose
    hold: int = 2
    transition: int = 1

    def __post_init__(self) -> None:
        if self.hold < 1:
            raise ConfigurationError(f"hold must be >= 1 frame, got {self.hold}")
        if self.transition < 0:
            raise ConfigurationError(
                f"transition must be >= 0 frames, got {self.transition}"
            )

    @property
    def frames(self) -> int:
        return self.hold + self.transition


@dataclass(frozen=True)
class JumpScript:
    """A full jump: keyframes plus flight geometry.

    Attributes:
        steps: pose keyframes in execution order.
        flight_span: horizontal pelvis travel during the airborne stage
            (world units ≈ pixels).
        flight_apex: extra pelvis height at the apex of the parabola.
        start_x: pelvis x at the first frame.
        takeoff_drive: forward pelvis drift accumulated over the JUMPING
            stage frames (the body moves forward during extension).
    """

    steps: "tuple[ScriptStep, ...]"
    flight_span: float = 170.0
    flight_apex: float = 18.0
    start_x: float = 80.0
    takeoff_drive: float = 10.0

    def __post_init__(self) -> None:
        if not self.steps:
            raise ConfigurationError("a jump script needs at least one step")
        if self.flight_span < 0:
            raise ConfigurationError(f"flight_span must be >= 0, got {self.flight_span}")

    @property
    def total_frames(self) -> int:
        """Number of frames the script produces (last transition dropped)."""
        return sum(s.frames for s in self.steps[:-1]) + self.steps[-1].hold

    def poses_used(self) -> "list[Pose]":
        return [s.pose for s in self.steps]


@dataclass(frozen=True)
class MotionFrame:
    """Ground truth for one synthesised frame."""

    index: int
    angles: JointAngles
    pelvis: Point
    pose: Pose
    stage: Stage
    airborne: bool


def _smoothstep(t: float) -> float:
    """Cubic ease-in/ease-out; keeps keyframe velocities from snapping."""
    return t * t * (3.0 - 2.0 * t)


def _frame_plan(
    steps: "tuple[ScriptStep, ...]",
    postures: "dict[Pose, JointAngles]",
) -> "list[tuple[JointAngles, Pose]]":
    """Expand keyframes into per-frame (angles, pose label) pairs.

    Transition frames take the label of the nearer keyframe, mirroring how
    a human annotator labels in-between frames.
    """
    plan: list[tuple[JointAngles, Pose]] = []
    for step_index, step in enumerate(steps):
        current = postures[step.pose]
        for _ in range(step.hold):
            plan.append((current, step.pose))
        if step_index == len(steps) - 1:
            break
        next_step = steps[step_index + 1]
        target = postures[next_step.pose]
        for k in range(step.transition):
            # Skew samples off the exact midpoint: a frame blended 50/50
            # between two postures is unlabelable even by a human, so the
            # schedule keeps every transition frame geometrically closer
            # to the keyframe whose label it carries.
            t = (k + 1) / (step.transition + 0.8)
            label = step.pose if t < 0.5 else next_step.pose
            plan.append((current.blended(target, _smoothstep(t)), label))
    return plan


def run_script(
    script: JumpScript,
    dims: "BodyDimensions | None" = None,
    postures: "dict[Pose, JointAngles] | None" = None,
) -> "list[MotionFrame]":
    """Synthesise the motion of a whole jump.

    Pelvis placement:

    * ground frames — feet planted: ``pelvis.y`` solves
      ``lowest body point == 0``; ``pelvis.x`` stays at ``start_x`` during
      *before jumping*, drifts forward by ``takeoff_drive`` across the
      *jumping* frames, and settles at the landing point afterwards;
    * airborne frames — ``pelvis`` follows a parabola from the last
      take-off position to the first landing position, raised by
      ``flight_apex`` at mid-flight.
    """
    dims = dims or BodyDimensions()
    if postures is None:
        postures = {pose: posture_for_pose(pose) for pose in Pose}
    plan = _frame_plan(script.steps, postures)
    stages = [pose.stage for _, pose in plan]

    air_indices = [i for i, s in enumerate(stages) if s == Stage.IN_THE_AIR]
    first_air = air_indices[0] if air_indices else None
    last_air = air_indices[-1] if air_indices else None

    # Horizontal plan: cumulative forward progress per frame.
    xs: list[float] = []
    x = script.start_x
    jumping_frames = sum(1 for s in stages if s == Stage.JUMPING)
    for i, stage in enumerate(stages):
        if stage == Stage.BEFORE_JUMPING:
            pass  # stay on the mark
        elif stage == Stage.JUMPING and jumping_frames:
            x += script.takeoff_drive / jumping_frames
        elif stage == Stage.IN_THE_AIR and air_indices:
            x += script.flight_span / len(air_indices)
        elif stage == Stage.LANDING:
            pass  # stick the landing
        xs.append(x)

    # Vertical plan: planted on the ground, parabolic in the air.
    grounded_y = [-lowest_point_offset(angles, dims) for angles, _ in plan]
    frames: list[MotionFrame] = []
    if first_air is not None and last_air is not None:
        takeoff_y = grounded_y[first_air - 1] if first_air > 0 else grounded_y[0]
        landing_y = (
            grounded_y[last_air + 1] if last_air + 1 < len(plan) else grounded_y[-1]
        )
    for i, (angles, pose) in enumerate(plan):
        stage = stages[i]
        airborne = stage == Stage.IN_THE_AIR
        if airborne and first_air is not None and last_air is not None:
            span = max(1, last_air - first_air + 1)
            t = (i - first_air + 0.5) / span
            y = (1 - t) * takeoff_y + t * landing_y + 4 * script.flight_apex * t * (1 - t)
        else:
            y = grounded_y[i]
        frames.append(
            MotionFrame(
                index=i,
                angles=angles,
                pelvis=Point(xs[i], y),
                pose=pose,
                stage=stage,
                airborne=airborne,
            )
        )
    return frames


#: Script variants.  A standing long jump follows one standard sequence, so
#: every variant shares the same canonical backbone and deviates in only a
#: couple of local substitutions (a different arm swing, a different flight
#: shape, a different landing recovery).  Across the three variants all 22
#: poses appear, with very unequal frequency — the imbalance §4.2
#: introduces ``Th_Pose`` to fight.
_BACKBONE: "tuple[ScriptStep, ...]" = (
    ScriptStep(Pose.STANDING_HANDS_OVERLAP, hold=2, transition=1),
    ScriptStep(Pose.STANDING_HANDS_RAISED_FORWARD, hold=1, transition=1),
    ScriptStep(Pose.STANDING_HANDS_SWUNG_FORWARD, hold=3, transition=1),
    ScriptStep(Pose.STANDING_HANDS_SWUNG_BACKWARD, hold=2, transition=1),
    ScriptStep(Pose.KNEES_BENT_HANDS_BACKWARD, hold=2, transition=1),
    ScriptStep(Pose.KNEES_BENT_HANDS_FORWARD, hold=1, transition=1),
    ScriptStep(Pose.EXTENSION_HANDS_RAISED_FORWARD, hold=1, transition=1),
    ScriptStep(Pose.TAKEOFF_BODY_FORWARD, hold=1, transition=1),
    ScriptStep(Pose.AIRBORNE_BODY_EXTENDED, hold=2, transition=1),
    ScriptStep(Pose.AIRBORNE_KNEES_TUCKED, hold=2, transition=1),
    ScriptStep(Pose.AIRBORNE_LEGS_FORWARD, hold=2, transition=1),
    ScriptStep(Pose.TOUCHDOWN_KNEES_BENT, hold=1, transition=1),
    ScriptStep(Pose.LANDING_DEEP_SQUAT, hold=2, transition=1),
    ScriptStep(Pose.LANDING_STANDING_UP, hold=2, transition=1),
    ScriptStep(Pose.LANDING_STANDING_HANDS_DOWN, hold=2, transition=1),
    ScriptStep(Pose.LANDING_STANDING_HANDS_OVERLAP, hold=2),
)


def _substitute(
    steps: "tuple[ScriptStep, ...]",
    swaps: "dict[Pose, Pose]",
    inserts: "dict[Pose, ScriptStep]",
) -> "tuple[ScriptStep, ...]":
    """Apply keyframe swaps and after-pose insertions to a backbone."""
    result: list[ScriptStep] = []
    for step in steps:
        pose = swaps.get(step.pose, step.pose)
        result.append(ScriptStep(pose, hold=step.hold, transition=step.transition))
        if step.pose in inserts:
            result.append(inserts[step.pose])
    return tuple(result)


_VARIANT_STEPS: "dict[int, tuple[ScriptStep, ...]]" = {
    # The canonical execution.
    0: _BACKBONE,
    # Arms swing fully overhead; take-off drives the arms up; the flight
    # uses a pike instead of a tuck.
    1: _substitute(
        _BACKBONE,
        swaps={
            Pose.STANDING_HANDS_RAISED_FORWARD: Pose.STANDING_HANDS_SWUNG_UP,
            Pose.TAKEOFF_BODY_FORWARD: Pose.TAKEOFF_ARMS_UP,
            Pose.AIRBORNE_KNEES_TUCKED: Pose.AIRBORNE_PIKE,
        },
        inserts={},
    ),
    # A waist bend during the preparation; arms swing down mid-flight; the
    # landing recovers through a waist bend instead of a deep squat.
    2: _substitute(
        _BACKBONE,
        swaps={
            Pose.AIRBORNE_KNEES_TUCKED: Pose.AIRBORNE_ARMS_DOWNSWING,
            Pose.LANDING_DEEP_SQUAT: Pose.LANDING_WAIST_BENT_ARMS_FORWARD,
        },
        inserts={
            Pose.STANDING_HANDS_RAISED_FORWARD: ScriptStep(
                Pose.WAIST_BENT_HANDS_RAISED_FORWARD, hold=2, transition=1
            ),
        },
    ),
}


def default_jump_script(variant: int = 0) -> JumpScript:
    """A realistic standing-long-jump script (variants 0–2)."""
    if variant not in _VARIANT_STEPS:
        raise ConfigurationError(
            f"unknown script variant {variant}; available: {sorted(_VARIANT_STEPS)}"
        )
    return JumpScript(steps=_VARIANT_STEPS[variant])


def num_script_variants() -> int:
    """How many built-in script variants exist."""
    return len(_VARIANT_STEPS)
