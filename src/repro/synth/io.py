"""Saving and loading jump clips as ``.npz`` archives.

A clip round-trips losslessly: frames, background, ground-truth
silhouettes, labels, stages, joints, and enough of the profile to
reconstruct it.  The format is plain numpy so archives can be inspected
without this package.
"""

from __future__ import annotations

import io
import json
import zipfile
from pathlib import Path

import numpy as np

from repro.core.poses import Pose, Stage
from repro.errors import DatasetError
from repro.synth.body import JointAngles
from repro.synth.dataset import JumpClip
from repro.synth.motion import MotionFrame
from repro.geometry.points import Point
from repro.synth.variation import Fault, SubjectProfile

_FORMAT_VERSION = 1


def _write_clip_archive(target, clip: JumpClip) -> None:
    """Write a clip archive to ``target`` (a path or binary file object)."""
    joints_names = sorted(clip.joints[0]) if clip.joints else []
    joints_array = np.array(
        [[clip.joints[t][name] for name in joints_names] for t in range(len(clip))]
    )
    profile = clip.profile
    metadata = {
        "version": _FORMAT_VERSION,
        "clip_id": clip.clip_id,
        "joints_names": joints_names,
        "profile": {
            "scale": profile.scale,
            "angle_jitter_deg": profile.angle_jitter_deg,
            "flight_span": profile.flight_span,
            "flight_apex": profile.flight_apex,
            "start_x": profile.start_x,
            "faults": [fault.name for fault in profile.faults],
        },
        "motion": [
            {
                "index": frame.index,
                "angles": frame.angles.__dict__ if hasattr(frame.angles, "__dict__")
                else {
                    name: getattr(frame.angles, name)
                    for name in (
                        "trunk", "neck", "shoulder", "elbow", "hip", "knee", "ankle"
                    )
                },
                "pelvis": [frame.pelvis.x, frame.pelvis.y],
                "pose": frame.pose.name,
                "airborne": frame.airborne,
            }
            for frame in clip.motion
        ],
    }
    np.savez_compressed(
        target,
        frames=np.stack(clip.frames),
        background=clip.background,
        silhouettes=np.stack(clip.silhouettes),
        labels=np.array([int(p) for p in clip.labels], dtype=np.int64),
        stages=np.array([int(s) for s in clip.stages], dtype=np.int64),
        joints=joints_array,
        metadata=np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
    )


def save_clip(clip: JumpClip, path: "str | Path") -> Path:
    """Write a clip to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    _write_clip_archive(path, clip)
    return path


def clip_to_bytes(clip: JumpClip) -> bytes:
    """Serialise a clip to in-memory archive bytes (wire transport)."""
    buffer = io.BytesIO()
    _write_clip_archive(buffer, clip)
    return buffer.getvalue()


def _read_clip_archive(source) -> JumpClip:
    """Read a clip archive from ``source`` (a path or binary file object)."""
    with np.load(source, allow_pickle=False) as archive:
        metadata = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))
        if metadata.get("version") != _FORMAT_VERSION:
            raise DatasetError(
                f"unsupported clip format version {metadata.get('version')}"
            )
        frames = tuple(archive["frames"])
        background = archive["background"]
        silhouettes = tuple(archive["silhouettes"].astype(bool))
        labels = tuple(Pose(int(v)) for v in archive["labels"])
        stages = tuple(Stage(int(v)) for v in archive["stages"])
        joints_names = metadata["joints_names"]
        joints = tuple(
            {
                name: (float(row[i][0]), float(row[i][1]))
                for i, name in enumerate(joints_names)
            }
            for row in archive["joints"]
        )
    profile_meta = metadata["profile"]
    profile = SubjectProfile(
        scale=profile_meta["scale"],
        angle_jitter_deg=profile_meta["angle_jitter_deg"],
        flight_span=profile_meta["flight_span"],
        flight_apex=profile_meta["flight_apex"],
        start_x=profile_meta["start_x"],
        faults=tuple(Fault[name] for name in profile_meta["faults"]),
    )
    motion = tuple(
        MotionFrame(
            index=entry["index"],
            angles=JointAngles(**entry["angles"]),
            pelvis=Point(entry["pelvis"][0], entry["pelvis"][1]),
            pose=Pose[entry["pose"]],
            stage=Pose[entry["pose"]].stage,
            airborne=entry["airborne"],
        )
        for entry in metadata["motion"]
    )
    return JumpClip(
        clip_id=metadata["clip_id"],
        frames=frames,
        background=background,
        silhouettes=silhouettes,
        labels=labels,
        stages=stages,
        joints=joints,
        motion=motion,
        profile=profile,
    )


def load_clip(path: "str | Path") -> JumpClip:
    """Read a clip written by :func:`save_clip`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"clip archive not found: {path}")
    return _read_clip_archive(path)


def clip_from_bytes(data: bytes) -> JumpClip:
    """Invert :func:`clip_to_bytes`; junk bytes raise ``DatasetError``."""
    try:
        return _read_clip_archive(io.BytesIO(data))
    except (zipfile.BadZipFile, OSError, ValueError, KeyError,
            json.JSONDecodeError, UnicodeDecodeError, TypeError) as exc:
        raise DatasetError(f"unreadable clip archive bytes: {exc}") from exc
