"""Rasterising the body model into silhouettes and RGB studio frames.

World coordinates (x right, y up, ground at y = 0) map to image pixels as
``row = ground_row - y`` and ``col = x``.  Limbs are drawn as capsules, the
head as a disk.  The far arm and far leg are drawn at a small constant
angle offset from the near limb, which is how a side-view silhouette of a
two-armed jumper actually looks — and it occasionally merges or splits
blobs exactly the way the paper's thinning artifacts need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.lines import rasterize_capsule, rasterize_disk
from repro.geometry.points import Point
from repro.synth.body import BodyDimensions, BodyPose, JointAngles, compute_joints


@dataclass(frozen=True)
class RenderSettings:
    """Rasterisation parameters.

    Attributes:
        shape: frame shape ``(rows, cols)``.
        ground_row: image row of the floor (y = 0).
        far_arm_offset: shoulder-angle offset of the far arm (degrees).
        far_leg_offset: hip-angle offset of the far leg (degrees).
        skin_color / shirt_color / pants_color: RGB paint for head, upper
            body + arms, and legs.
    """

    shape: tuple[int, int] = (240, 400)
    ground_row: int = 216
    far_arm_offset: float = 9.0
    far_leg_offset: float = 7.0
    skin_color: tuple[int, int, int] = (202, 168, 134)
    shirt_color: tuple[int, int, int] = (176, 64, 52)
    pants_color: tuple[int, int, int] = (56, 84, 158)

    def __post_init__(self) -> None:
        rows, cols = self.shape
        if rows < 16 or cols < 16:
            raise ConfigurationError(f"frame shape too small: {self.shape}")
        if not (0 < self.ground_row < rows):
            raise ConfigurationError(
                f"ground_row {self.ground_row} outside frame of {rows} rows"
            )

    def to_image(self, point: Point) -> tuple[float, float]:
        """World point → (row, col)."""
        return (self.ground_row - point.y, point.x)


def _draw_limb(
    canvas: np.ndarray,
    settings: RenderSettings,
    joints: "dict[str, Point]",
    names: "tuple[str, ...]",
    girth: float,
) -> None:
    for a, b in zip(names[:-1], names[1:]):
        r0, c0 = settings.to_image(joints[a])
        r1, c1 = settings.to_image(joints[b])
        rasterize_capsule(canvas, r0, c0, r1, c1, girth)


def render_body_masks(
    pose: BodyPose,
    dims: "BodyDimensions | None" = None,
    settings: "RenderSettings | None" = None,
) -> "dict[str, np.ndarray]":
    """Rasterise the body into three paint groups.

    Returns masks ``head`` (head disk + neck), ``upper`` (trunk and both
    arms), and ``legs`` (both legs), each a boolean array of
    ``settings.shape``.  Their union is the silhouette.
    """
    dims = dims or BodyDimensions()
    settings = settings or RenderSettings()
    near = compute_joints(pose, dims)
    far_angles: JointAngles = pose.angles.with_offsets(
        shoulder=settings.far_arm_offset, hip=settings.far_leg_offset
    )
    far = compute_joints(BodyPose(angles=far_angles, pelvis=pose.pelvis), dims)

    head = np.zeros(settings.shape, dtype=bool)
    upper = np.zeros(settings.shape, dtype=bool)
    legs = np.zeros(settings.shape, dtype=bool)

    hr, hc = settings.to_image(near["head_center"])
    rasterize_disk(head, hr, hc, dims.head_radius)
    _draw_limb(head, settings, near, ("neck", "head_center"), dims.limb_girth)

    _draw_limb(upper, settings, near, ("pelvis", "neck"), dims.trunk_girth)
    for joints in (near, far):
        _draw_limb(
            upper,
            settings,
            joints,
            ("shoulder", "elbow", "hand", "fingertip"),
            dims.limb_girth,
        )
        _draw_limb(
            legs, settings, joints, ("hip", "knee", "ankle", "toe"), dims.leg_girth
        )
    return {"head": head, "upper": upper, "legs": legs}


def render_silhouette(
    pose: BodyPose,
    dims: "BodyDimensions | None" = None,
    settings: "RenderSettings | None" = None,
) -> np.ndarray:
    """Clean ground-truth silhouette (union of all paint groups)."""
    masks = render_body_masks(pose, dims, settings)
    return masks["head"] | masks["upper"] | masks["legs"]


def render_rgb_frame(
    pose: BodyPose,
    background: np.ndarray,
    dims: "BodyDimensions | None" = None,
    settings: "RenderSettings | None" = None,
    lighting_gain: float = 1.0,
    noise_sigma: float = 2.0,
    rng: "np.random.Generator | None" = None,
) -> np.ndarray:
    """Composite the jumper onto a studio background frame.

    ``lighting_gain`` scales the body paint (studio lamp flicker);
    ``noise_sigma`` is per-pixel Gaussian sensor noise applied to the whole
    frame.  Returns a uint8 RGB frame; the background array is not modified.
    """
    settings = settings or RenderSettings()
    if background.shape != settings.shape + (3,):
        raise ConfigurationError(
            f"background shape {background.shape} does not match frame shape "
            f"{settings.shape + (3,)}"
        )
    masks = render_body_masks(pose, dims, settings)
    frame = background.astype(np.float64).copy()
    paints = (
        ("legs", settings.pants_color),
        ("upper", settings.shirt_color),
        ("head", settings.skin_color),
    )
    for name, color in paints:
        mask = masks[name]
        for channel in range(3):
            frame[..., channel][mask] = color[channel] * lighting_gain
    if noise_sigma > 0:
        generator = rng if rng is not None else np.random.default_rng(0)
        frame += generator.normal(0.0, noise_sigma, size=frame.shape)
    return np.clip(np.rint(frame), 0, 255).astype(np.uint8)


def joints_in_image(
    pose: BodyPose,
    dims: "BodyDimensions | None" = None,
    settings: "RenderSettings | None" = None,
) -> "dict[str, tuple[float, float]]":
    """Ground-truth joint positions in image ``(row, col)`` coordinates."""
    settings = settings or RenderSettings()
    joints = compute_joints(pose, dims or BodyDimensions())
    return {name: settings.to_image(point) for name, point in joints.items()}
