"""Sliding-window filters: the §2 moving average and the median smoother.

Both are implemented directly on numpy.  ``box_filter`` is the paper's
``(1/n^2) * sum`` moving-window average (steps i–ii of §2); ``median_filter``
is the smoother applied to the raw silhouette before skeletonisation
(Figure 1(b) → 1(c)).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import ConfigurationError
from repro.imaging.image import ensure_gray


def _check_window(window: int) -> None:
    if not isinstance(window, (int, np.integer)):
        raise ConfigurationError(f"window must be an int, got {type(window).__name__}")
    if window < 1 or window % 2 != 1:
        raise ConfigurationError(f"window must be a positive odd int, got {window}")


def box_filter(image: np.ndarray, window: int) -> np.ndarray:
    """Moving-window mean over an ``window x window`` neighbourhood.

    Matches the paper's average matrices ``B_ave`` / ``A_ave``: each output
    pixel is the mean of the window centred on it.  Borders are handled by
    edge replication, which mimics the paper's implicit behaviour of only
    averaging available pixels near the frame edge.
    """
    _check_window(window)
    data = ensure_gray(image)
    if window == 1:
        return data.copy()
    half = window // 2
    padded = np.pad(data, half, mode="edge")
    # Summed-area table: O(1) per output pixel regardless of window size.
    integral = np.zeros((padded.shape[0] + 1, padded.shape[1] + 1))
    np.cumsum(np.cumsum(padded, axis=0), axis=1, out=integral[1:, 1:])
    h, w = data.shape
    top = integral[:h, :w]
    bottom = integral[window:, window:]
    right = integral[:h, window:]
    down = integral[window:, :w]
    window_sum = bottom - right - down + top
    return window_sum / (window * window)


def median_filter(image: np.ndarray, window: int = 3) -> np.ndarray:
    """Median over an ``window x window`` neighbourhood (edge-replicated).

    Works on grayscale images and on boolean masks; boolean input produces
    boolean output (majority vote), which is how the paper's silhouette
    smoothing uses it.
    """
    _check_window(window)
    is_binary = image.dtype == bool
    data = image.astype(np.float64, copy=False)
    if data.ndim != 2:
        raise ConfigurationError(f"expected a 2-D array, got shape {image.shape}")
    if window == 1:
        result = data.copy()
    else:
        half = window // 2
        padded = np.pad(data, half, mode="edge")
        windows = sliding_window_view(padded, (window, window))
        result = np.median(windows, axis=(2, 3))
    if is_binary:
        return result > 0.5
    return result


def subtract_images(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise ``a - b`` in float64 (step iii of §2)."""
    return ensure_gray(a) - ensure_gray(b)
