"""Image validation and conversion helpers."""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError


def ensure_rgb(image: np.ndarray) -> np.ndarray:
    """Validate an ``(H, W, 3)`` uint8 RGB frame and return it unchanged."""
    if not isinstance(image, np.ndarray):
        raise ImageError(f"expected a numpy array, got {type(image).__name__}")
    if image.ndim != 3 or image.shape[2] != 3:
        raise ImageError(f"expected an (H, W, 3) RGB array, got shape {image.shape}")
    if image.dtype != np.uint8:
        raise ImageError(f"expected uint8 RGB data, got dtype {image.dtype}")
    return image


def ensure_gray(image: np.ndarray) -> np.ndarray:
    """Validate a 2-D numeric array and return it as float64."""
    if not isinstance(image, np.ndarray):
        raise ImageError(f"expected a numpy array, got {type(image).__name__}")
    if image.ndim != 2:
        raise ImageError(f"expected a 2-D array, got shape {image.shape}")
    return image.astype(np.float64, copy=False)


def ensure_binary(image: np.ndarray) -> np.ndarray:
    """Validate a 2-D mask and return it as bool.

    Accepts bool arrays and 0/1 integer arrays; anything else is rejected so
    that accidentally passing a grayscale image into a morphology routine
    fails loudly instead of thresholding implicitly.
    """
    if not isinstance(image, np.ndarray):
        raise ImageError(f"expected a numpy array, got {type(image).__name__}")
    if image.ndim != 2:
        raise ImageError(f"expected a 2-D array, got shape {image.shape}")
    if image.dtype == bool:
        return image
    if np.issubdtype(image.dtype, np.integer):
        unique = np.unique(image)
        if np.all(np.isin(unique, (0, 1))):
            return image.astype(bool)
        raise ImageError(
            f"integer mask contains values other than 0/1: {unique[:8]}"
        )
    raise ImageError(f"expected a bool or 0/1 integer mask, got dtype {image.dtype}")


def rgb_to_gray(image: np.ndarray) -> np.ndarray:
    """Luma conversion (ITU-R BT.601 weights), returned as float64."""
    rgb = ensure_rgb(image).astype(np.float64)
    return 0.299 * rgb[..., 0] + 0.587 * rgb[..., 1] + 0.114 * rgb[..., 2]


def clip_to_uint8(image: np.ndarray) -> np.ndarray:
    """Round and clip a float image into the uint8 range."""
    return np.clip(np.rint(image), 0, 255).astype(np.uint8)
