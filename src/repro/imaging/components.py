"""Connected-component labelling with two-pass union-find.

Used by the extractor to isolate the jumper blob and by the morphology
module to count/fill background holes.  8-connectivity is the default
because silhouettes are 8-connected objects in this pipeline (and the Z-S
skeleton preserves 8-connectivity).

The default ``fast`` method is run-based: foreground pixels are grouped
into horizontal runs (a vectorised scan), adjacent runs between
consecutive rows are found with sorted searches, and the resulting
run-adjacency edges are resolved by an array union-find.  Work scales
with the number of *runs* rather than pixels, which is orders of
magnitude fewer for silhouettes.  The original per-pixel scan is kept as
``method="naive"`` and the equivalence tests assert the two label rasters
are identical.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.imaging.image import ensure_binary


class _UnionFind:
    """Array-based union-find with path compression and union by size."""

    def __init__(self, capacity: int) -> None:
        self.parent = np.arange(capacity, dtype=np.int64)
        self.size = np.ones(capacity, dtype=np.int64)

    def find(self, node: int) -> int:
        root = node
        parent = self.parent
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


def _row_runs(binary: np.ndarray) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Horizontal foreground runs as ``(row, start, end)`` in raster order.

    One transition scan over a zero-flanked flattening: padding every row
    on both sides keeps runs from spanning rows, and the sorted transition
    indices alternate start, end, start, end, ...
    """
    height, width = binary.shape
    flanked = np.zeros((height, width + 2), dtype=bool)
    flanked[:, 1:-1] = binary
    flat = flanked.ravel()
    transitions = np.flatnonzero(flat[1:] != flat[:-1])
    rises = transitions[0::2]
    falls = transitions[1::2]
    run_row = rises // (width + 2)
    run_start = rises % (width + 2)  # transition precedes the first pixel
    run_end = falls % (width + 2) - 1
    return run_row, run_start, run_end


def _connected_components_fast(
    binary: np.ndarray, connectivity: int
) -> "tuple[np.ndarray, int]":
    height, width = binary.shape
    labels = np.zeros((height, width), dtype=np.int32)
    run_row, run_start, run_end = _row_runs(binary)
    n_runs = run_row.size
    if n_runs == 0:
        return labels, 0

    # Runs in consecutive rows touch when their column spans overlap,
    # widened by 1 for diagonal contact under 8-connectivity.  Because
    # runs are raster-ordered, a composite (row, column) key is globally
    # sorted, so each run's window of touching runs in the previous row
    # is one sorted search per side.
    reach = 1 if connectivity == 8 else 0
    stride = np.int64(width + 2)
    row64 = run_row.astype(np.int64)
    start_key = row64 * stride + run_start
    end_key = row64 * stride + run_end
    lo = np.searchsorted(end_key, (row64 - 1) * stride + run_start - reach, "left")
    hi = np.searchsorted(start_key, (row64 - 1) * stride + run_end + reach, "right")
    counts = hi - lo

    # Union-find over run-adjacency edges.  Plain Python lists beat numpy
    # here: the edge count is O(runs) and list indexing avoids the numpy
    # scalar boxing that dominates at this size.
    parent = list(range(n_runs))
    total = int(counts.sum())
    if total:
        current = np.repeat(np.arange(n_runs), counts)
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        previous = np.repeat(lo, counts) + offsets
        for a, b in zip(current.tolist(), previous.tolist()):
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            while parent[b] != b:
                parent[b] = parent[parent[b]]
                b = parent[b]
            if a != b:
                # Point the later run at the earlier one so every root is
                # its component's first (raster-order) run.
                if a < b:
                    parent[b] = a
                else:
                    parent[a] = b

    roots = np.array(parent, dtype=np.int64)
    while True:
        grand = roots[roots]
        if np.array_equal(grand, roots):
            break
        roots = grand
    # Every root is its component's earliest run (unions point at the
    # smaller index), so sorted unique roots are already in raster order
    # of each component's first pixel — dense labels fall out directly.
    unique_roots, inverse = np.unique(roots, return_inverse=True)
    count = unique_roots.size
    run_labels = (inverse + 1).astype(np.int32)

    lengths = run_end - run_start + 1
    flat_starts = row64 * width + run_start
    pixel_offsets = np.arange(int(lengths.sum())) - np.repeat(
        np.cumsum(lengths) - lengths, lengths
    )
    positions = np.repeat(flat_starts, lengths) + pixel_offsets
    labels.ravel()[positions] = np.repeat(run_labels, lengths)
    return labels, count


def _connected_components_naive(
    binary: np.ndarray, connectivity: int
) -> "tuple[np.ndarray, int]":
    height, width = binary.shape
    labels = np.zeros((height, width), dtype=np.int32)

    # First pass: provisional labels + equivalences via union-find.
    uf = _UnionFind(height * width // 2 + 2)
    next_label = 1
    provisional = np.zeros((height, width), dtype=np.int32)
    if connectivity == 8:
        neighbour_offsets = ((-1, -1), (-1, 0), (-1, 1), (0, -1))
    else:
        neighbour_offsets = ((-1, 0), (0, -1))
    rows, cols = np.nonzero(binary)
    for r, c in zip(rows.tolist(), cols.tolist()):
        neighbour_labels = []
        for dr, dc in neighbour_offsets:
            rr, cc = r + dr, c + dc
            if 0 <= rr < height and 0 <= cc < width and provisional[rr, cc]:
                neighbour_labels.append(provisional[rr, cc])
        if not neighbour_labels:
            provisional[r, c] = next_label
            next_label += 1
        else:
            smallest = min(neighbour_labels)
            provisional[r, c] = smallest
            for other in neighbour_labels:
                if other != smallest:
                    uf.union(smallest, other)

    # Second pass: resolve equivalences into dense labels.
    remap: dict[int, int] = {}
    count = 0
    for r, c in zip(rows.tolist(), cols.tolist()):
        root = uf.find(provisional[r, c])
        if root not in remap:
            count += 1
            remap[root] = count
        labels[r, c] = remap[root]
    return labels, count


def connected_components(
    mask: np.ndarray, connectivity: int = 8, method: str = "fast"
) -> tuple[np.ndarray, int]:
    """Label connected components of a binary mask.

    Returns ``(labels, count)`` where ``labels`` is int32 with 0 for
    background and 1..count for components, numbered in raster order of
    their first pixel.  ``method`` selects the run-based vectorised
    labeller (``"fast"``, default) or the per-pixel reference scan
    (``"naive"``); both produce identical rasters.
    """
    if connectivity not in (4, 8):
        raise ConfigurationError(f"connectivity must be 4 or 8, got {connectivity}")
    if method not in ("fast", "naive"):
        raise ConfigurationError(f"method must be 'fast' or 'naive', got {method!r}")
    binary = ensure_binary(mask)
    if not binary.any():
        return np.zeros(binary.shape, dtype=np.int32), 0
    if method == "fast":
        return _connected_components_fast(binary, connectivity)
    return _connected_components_naive(binary, connectivity)


def component_sizes(labels: np.ndarray, count: int) -> np.ndarray:
    """Pixel count of each component; index 0 is the background."""
    return np.bincount(labels.ravel(), minlength=count + 1)


def largest_component(mask: np.ndarray, connectivity: int = 8) -> np.ndarray:
    """Return a mask containing only the largest connected component."""
    labels, count = connected_components(mask, connectivity)
    if count == 0:
        return np.zeros_like(ensure_binary(mask))
    sizes = component_sizes(labels, count)
    sizes[0] = 0  # never pick the background
    keep = int(sizes.argmax())
    return labels == keep
