"""Connected-component labelling with two-pass union-find.

Used by the extractor to isolate the jumper blob and by the morphology
module to count/fill background holes.  8-connectivity is the default
because silhouettes are 8-connected objects in this pipeline (and the Z-S
skeleton preserves 8-connectivity).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.imaging.image import ensure_binary


class _UnionFind:
    """Array-based union-find with path compression and union by size."""

    def __init__(self, capacity: int) -> None:
        self.parent = np.arange(capacity, dtype=np.int64)
        self.size = np.ones(capacity, dtype=np.int64)

    def find(self, node: int) -> int:
        root = node
        parent = self.parent
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


def connected_components(
    mask: np.ndarray, connectivity: int = 8
) -> tuple[np.ndarray, int]:
    """Label connected components of a binary mask.

    Returns ``(labels, count)`` where ``labels`` is int32 with 0 for
    background and 1..count for components, numbered in raster order of
    their first pixel.
    """
    if connectivity not in (4, 8):
        raise ConfigurationError(f"connectivity must be 4 or 8, got {connectivity}")
    binary = ensure_binary(mask)
    height, width = binary.shape
    labels = np.zeros((height, width), dtype=np.int32)
    if not binary.any():
        return labels, 0

    # First pass: provisional labels + equivalences via union-find.
    uf = _UnionFind(height * width // 2 + 2)
    next_label = 1
    provisional = np.zeros((height, width), dtype=np.int32)
    if connectivity == 8:
        neighbour_offsets = ((-1, -1), (-1, 0), (-1, 1), (0, -1))
    else:
        neighbour_offsets = ((-1, 0), (0, -1))
    rows, cols = np.nonzero(binary)
    for r, c in zip(rows.tolist(), cols.tolist()):
        neighbour_labels = []
        for dr, dc in neighbour_offsets:
            rr, cc = r + dr, c + dc
            if 0 <= rr < height and 0 <= cc < width and provisional[rr, cc]:
                neighbour_labels.append(provisional[rr, cc])
        if not neighbour_labels:
            provisional[r, c] = next_label
            next_label += 1
        else:
            smallest = min(neighbour_labels)
            provisional[r, c] = smallest
            for other in neighbour_labels:
                if other != smallest:
                    uf.union(smallest, other)

    # Second pass: resolve equivalences into dense labels.
    remap: dict[int, int] = {}
    count = 0
    for r, c in zip(rows.tolist(), cols.tolist()):
        root = uf.find(provisional[r, c])
        if root not in remap:
            count += 1
            remap[root] = count
        labels[r, c] = remap[root]
    return labels, count


def component_sizes(labels: np.ndarray, count: int) -> np.ndarray:
    """Pixel count of each component; index 0 is the background."""
    return np.bincount(labels.ravel(), minlength=count + 1)


def largest_component(mask: np.ndarray, connectivity: int = 8) -> np.ndarray:
    """Return a mask containing only the largest connected component."""
    labels, count = connected_components(mask, connectivity)
    if count == 0:
        return np.zeros_like(ensure_binary(mask))
    sizes = component_sizes(labels, count)
    sizes[0] = 0  # never pick the background
    keep = int(sizes.argmax())
    return labels == keep
