"""The paper's §2 object extractor (modified from a tracking algorithm [5]).

Given a background frame ``B`` and a frame with the moving object ``A``
(both RGB), the algorithm is, step by step:

i.    ``B_ave``: per-channel ``n x n`` moving-window average of ``B``.
ii.   ``A_ave``: the same moving-window average of ``A``.
iii.  ``C = A_ave - B_ave`` per channel.
iv.   ``D(i,j) = |C(i,j,R)| + |C(i,j,G)| + |C(i,j,B)|``.
v.    ``m = max(D)``.
vi.   Subtract ``m - 255`` from every pixel so the maximum becomes 255.
vii.  Clamp negatives to zero, giving ``R``.
viii. ``Obj(i,j) = 1`` if ``R(i,j) > Th_Object`` else 0 (``Th_Object = 20``).

The paper then smooths ``Obj`` with a median filter (Figure 1(c)).  This
module adds two engineering niceties the paper applies implicitly: the
result can be restricted to the largest connected component (the jumper),
and the raw/smoothed masks are both returned for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, ImageError
from repro.imaging.components import largest_component
from repro.imaging.filters import box_filter, median_filter
from repro.imaging.image import ensure_rgb

DEFAULT_TH_OBJECT = 20.0


@dataclass(frozen=True)
class ExtractionResult:
    """Everything the §2 extractor produces for one frame.

    Attributes:
        mask: final silhouette (after median smoothing and, if enabled,
            largest-component selection).
        raw_mask: thresholded mask before smoothing (Figure 1(b)).
        difference: the normalised difference image ``R`` (step vii), useful
            for threshold ablations.
    """

    mask: np.ndarray
    raw_mask: np.ndarray
    difference: np.ndarray

    @property
    def foreground_fraction(self) -> float:
        """Fraction of frame pixels marked as foreground."""
        return float(self.mask.mean())


@dataclass
class BackgroundSubtractor:
    """§2 object extraction with the paper's parameters as defaults.

    Args:
        threshold: ``Th_Object`` of step viii (paper value 20).
        window: moving-average window ``n`` of steps i–ii (odd; 3 matches
            the paper's "simple and fast" intent).
        median_window: window of the silhouette-smoothing median filter.
        keep_largest_component: restrict the final mask to the largest
            connected blob, discarding small specks the threshold lets
            through.  The paper's studio frames contain exactly one mover.
    """

    threshold: float = DEFAULT_TH_OBJECT
    window: int = 3
    median_window: int = 3
    keep_largest_component: bool = True
    _background: "np.ndarray | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.threshold < 0 or self.threshold > 255:
            raise ConfigurationError(
                f"threshold must be in [0, 255], got {self.threshold}"
            )
        if self.window < 1 or self.window % 2 != 1:
            raise ConfigurationError(f"window must be odd and >= 1, got {self.window}")
        if self.median_window < 1 or self.median_window % 2 != 1:
            raise ConfigurationError(
                f"median_window must be odd and >= 1, got {self.median_window}"
            )

    def fit_background(self, background: np.ndarray) -> "BackgroundSubtractor":
        """Store the averaged background ``B_ave`` (steps i of §2)."""
        rgb = ensure_rgb(background).astype(np.float64)
        averaged = np.stack(
            [box_filter(rgb[..., k], self.window) for k in range(3)], axis=-1
        )
        self._background = averaged
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit_background` has been called."""
        return self._background is not None

    def difference_image(self, frame: np.ndarray) -> np.ndarray:
        """Steps ii–vii: the normalised absolute-difference image ``R``."""
        if self._background is None:
            raise ImageError(
                "background not fitted; call fit_background() with a clean frame"
            )
        rgb = ensure_rgb(frame).astype(np.float64)
        if rgb.shape != self._background.shape:
            raise ImageError(
                f"frame shape {rgb.shape} does not match background shape "
                f"{self._background.shape}"
            )
        averaged = np.stack(
            [box_filter(rgb[..., k], self.window) for k in range(3)], axis=-1
        )
        diff = averaged - self._background  # step iii
        d = np.abs(diff).sum(axis=-1)  # step iv
        peak = float(d.max())  # step v
        # Step vi: shift so the max becomes 255. When the frame equals the
        # background (peak 0) the shift would promote noise to 255, so the
        # all-zero image is returned as-is.
        if peak <= 0:
            return np.zeros_like(d)
        shifted = d - (peak - 255.0)
        return np.maximum(shifted, 0.0)  # step vii

    def extract(self, frame: np.ndarray) -> ExtractionResult:
        """Run the full extractor on one frame (steps ii–viii + smoothing)."""
        difference = self.difference_image(frame)
        raw_mask = difference > self.threshold  # step viii
        mask = median_filter(raw_mask, self.median_window)
        if self.keep_largest_component and mask.any():
            mask = largest_component(mask)
        return ExtractionResult(mask=mask, raw_mask=raw_mask, difference=difference)

    def extract_clip(self, frames: "list[np.ndarray]") -> "list[ExtractionResult]":
        """Extract every frame of a clip against the fitted background."""
        return [self.extract(frame) for frame in frames]
