"""Mask-quality metrics used by the extraction benchmarks (Figure 1, §2)."""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.image import ensure_binary


def intersection_over_union(a: np.ndarray, b: np.ndarray) -> float:
    """IoU of two masks; 1.0 when both are empty (perfect agreement)."""
    mask_a = ensure_binary(a)
    mask_b = ensure_binary(b)
    if mask_a.shape != mask_b.shape:
        raise ImageError(f"mask shapes differ: {mask_a.shape} vs {mask_b.shape}")
    union = np.logical_or(mask_a, mask_b).sum()
    if union == 0:
        return 1.0
    return float(np.logical_and(mask_a, mask_b).sum() / union)


def pixel_error_rate(predicted: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of pixels where the masks disagree."""
    mask_p = ensure_binary(predicted)
    mask_t = ensure_binary(truth)
    if mask_p.shape != mask_t.shape:
        raise ImageError(f"mask shapes differ: {mask_p.shape} vs {mask_t.shape}")
    return float(np.logical_xor(mask_p, mask_t).mean())


def boundary_length(mask: np.ndarray) -> int:
    """Number of foreground pixels 4-adjacent to the background."""
    binary = ensure_binary(mask)
    padded = np.pad(binary, 1, mode="constant", constant_values=False)
    interior = (
        padded[:-2, 1:-1] & padded[2:, 1:-1] & padded[1:-1, :-2] & padded[1:-1, 2:]
    )
    return int((binary & ~interior).sum())


def boundary_roughness(mask: np.ndarray) -> float:
    """Boundary length normalised by the equivalent-disk perimeter.

    1.0 means the silhouette boundary is as short as a disk of the same
    area; ragged edges (the "ridged edges" of §2) push the value up.  The
    Figure 1 benchmark reports this before and after median smoothing.
    """
    binary = ensure_binary(mask)
    area = int(binary.sum())
    if area == 0:
        return 0.0
    perimeter = boundary_length(binary)
    equivalent = 2.0 * np.sqrt(np.pi * area)
    return float(perimeter / equivalent)
