"""Binary morphology on boolean masks.

Erosion/dilation use a square structuring element (the common choice for
silhouette clean-up); hole counting and filling are defined through
4-connected background components, the dual of the 8-connected foreground.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.imaging.components import connected_components
from repro.imaging.image import ensure_binary


def _check_size(size: int) -> None:
    if not isinstance(size, (int, np.integer)) or size < 1 or size % 2 != 1:
        raise ConfigurationError(f"structuring element size must be odd >= 1, got {size}")


def binary_dilation(mask: np.ndarray, size: int = 3) -> np.ndarray:
    """Dilate with a ``size x size`` square structuring element."""
    _check_size(size)
    binary = ensure_binary(mask)
    if size == 1:
        return binary.copy()
    half = size // 2
    padded = np.pad(binary, half, mode="constant", constant_values=False)
    result = np.zeros_like(binary)
    for dr in range(size):
        for dc in range(size):
            result |= padded[dr : dr + binary.shape[0], dc : dc + binary.shape[1]]
    return result


def binary_erosion(mask: np.ndarray, size: int = 3) -> np.ndarray:
    """Erode with a ``size x size`` square structuring element.

    The border is padded with foreground (outside-the-frame counts as
    object), which keeps closing extensive — a mask is always a subset of
    its closing even when it touches the frame edge.
    """
    _check_size(size)
    binary = ensure_binary(mask)
    if size == 1:
        return binary.copy()
    half = size // 2
    padded = np.pad(binary, half, mode="constant", constant_values=True)
    result = np.ones_like(binary)
    for dr in range(size):
        for dc in range(size):
            result &= padded[dr : dr + binary.shape[0], dc : dc + binary.shape[1]]
    return result


def binary_opening(mask: np.ndarray, size: int = 3) -> np.ndarray:
    """Erosion followed by dilation: removes specks smaller than the element."""
    return binary_dilation(binary_erosion(mask, size), size)


def binary_closing(mask: np.ndarray, size: int = 3) -> np.ndarray:
    """Dilation followed by erosion: closes gaps smaller than the element."""
    return binary_erosion(binary_dilation(mask, size), size)


def _background_labels(mask: np.ndarray) -> tuple[np.ndarray, int, set[int]]:
    """Label 4-connected background components and find those touching the border."""
    binary = ensure_binary(mask)
    labels, count = connected_components(~binary, connectivity=4)
    border = set(np.unique(np.concatenate([
        labels[0, :], labels[-1, :], labels[:, 0], labels[:, -1]
    ])))
    border.discard(0)
    return labels, count, border


def count_holes(mask: np.ndarray) -> int:
    """Number of background components fully enclosed by the foreground.

    This is the quantity the paper's median-filter step reduces ("some small
    holes ... exist in the extracted object"), reported by the Figure 1
    benchmark.
    """
    labels, count, border = _background_labels(mask)
    return count - len(border)


def fill_holes(mask: np.ndarray) -> np.ndarray:
    """Fill every enclosed background component with foreground."""
    binary = ensure_binary(mask)
    labels, count, border = _background_labels(binary)
    if count == len(border):
        return binary.copy()
    enclosed = np.ones(count + 1, dtype=bool)
    enclosed[0] = False
    for label in border:
        enclosed[label] = False
    return binary | enclosed[labels]
