"""Imaging substrate: the paper's §2 object extractor and its helpers.

Everything operates on plain numpy arrays:

* RGB frames are ``(H, W, 3)`` ``uint8`` arrays,
* binary masks are ``(H, W)`` ``bool`` arrays.

The package implements, from the paper's equations, the moving-window
background subtractor (steps i–viii of §2), the median filter used to smooth
the silhouette, morphological operators, and a union-find connected-component
labeller used to isolate the jumper blob.
"""

from repro.imaging.background import BackgroundSubtractor, ExtractionResult
from repro.imaging.components import connected_components, largest_component
from repro.imaging.filters import box_filter, median_filter
from repro.imaging.image import (
    ensure_binary,
    ensure_gray,
    ensure_rgb,
    rgb_to_gray,
)
from repro.imaging.morphology import (
    binary_closing,
    binary_dilation,
    binary_erosion,
    binary_opening,
    count_holes,
    fill_holes,
)
from repro.imaging.metrics import boundary_roughness, intersection_over_union

__all__ = [
    "BackgroundSubtractor",
    "ExtractionResult",
    "connected_components",
    "largest_component",
    "box_filter",
    "median_filter",
    "ensure_binary",
    "ensure_gray",
    "ensure_rgb",
    "rgb_to_gray",
    "binary_closing",
    "binary_dilation",
    "binary_erosion",
    "binary_opening",
    "count_holes",
    "fill_holes",
    "boundary_roughness",
    "intersection_over_union",
]
