"""Per-frame Bayesian-network classification without temporal links.

This is the Figure 7(a) system alone: each frame is classified from its
feature candidates and the class prior, with no previous-pose or stage
conditioning.  The Figure 7 benchmark compares it against the full DBN to
show what the temporal structure buys.
"""

from __future__ import annotations

import numpy as np

from repro.core.dbnclassifier import FramePrediction
from repro.core.posebank import PoseObservationModel
from repro.core.poses import NUM_POSES, POSE_STAGE, Pose, Stage
from repro.errors import ModelError
from repro.features.encoding import FeatureVector


class StaticBNClassifier:
    """Frame-independent pose classification (no DBN).

    Args:
        observation: a fitted observation model.
        pose_counts: training-frame counts per pose, used as the class
            prior (Dirichlet-smoothed with ``prior_alpha``).
    """

    def __init__(
        self,
        observation: PoseObservationModel,
        pose_counts: "dict[Pose, int] | None" = None,
        prior_alpha: float = 1.0,
    ) -> None:
        if not observation.is_fitted:
            raise ModelError("observation model must be fitted")
        self.observation = observation
        counts = np.full(NUM_POSES, prior_alpha)
        for pose, count in (pose_counts or {}).items():
            counts[pose] += count
        self.prior = counts / counts.sum()

    def classify(
        self, frames: "list[list[FeatureVector]]"
    ) -> "list[FramePrediction]":
        """Independent MAP classification of every frame."""
        predictions: list[FramePrediction] = []
        for candidates in frames:
            if not candidates:
                pose = Pose(int(np.argmax(self.prior)))
                predictions.append(
                    FramePrediction(pose, float(self.prior[pose]), POSE_STAGE[pose])
                )
                continue
            scores = np.zeros(NUM_POSES)
            for feature in candidates:
                vector = self.observation.part_likelihood_vector(feature)
                scores = np.maximum(scores, vector * feature.weight)
            posterior = scores * self.prior
            total = posterior.sum()
            posterior = posterior / total if total > 0 else self.prior
            pose = Pose(int(np.argmax(posterior)))
            predictions.append(
                FramePrediction(pose, float(posterior[pose]), POSE_STAGE[pose])
            )
        return predictions
