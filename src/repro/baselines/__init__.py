"""Baselines and ablation comparators.

* :class:`~repro.baselines.genetic.GeneticSkeletonFitter` — the authors'
  previous GA stick-model fitter [1], reproduced for the §1 runtime claim
  ("the search process of the genetic algorithm is very time-consuming").
* :class:`~repro.baselines.static_bn.StaticBNClassifier` — per-frame BN
  without temporal links (the Fig 7(a)-only system).
* :class:`~repro.baselines.hmm.PoseHMMClassifier` — temporal smoothing
  *without* the jumping-stage flag, isolating the flag's contribution.
* :class:`~repro.baselines.nearest.NearestCentroidClassifier` — a
  non-probabilistic feature-matching floor.
"""

from repro.baselines.genetic import GAConfig, GAFitResult, GeneticSkeletonFitter
from repro.baselines.static_bn import StaticBNClassifier
from repro.baselines.hmm import PoseHMMClassifier
from repro.baselines.nearest import NearestCentroidClassifier

__all__ = [
    "GAConfig",
    "GAFitResult",
    "GeneticSkeletonFitter",
    "StaticBNClassifier",
    "PoseHMMClassifier",
    "NearestCentroidClassifier",
]
