"""The GA stick-model skeleton fitter of the authors' prior work [1].

The previous system fitted a predefined stick model (whose segment lengths
"need to be given by the user beforehand") to the extracted silhouette
with a genetic algorithm, which §1 calls "very time-consuming" — the
motivation for switching to thinning.  This reproduction fits the same
articulated body model the studio renders: a genome of pelvis position and
seven joint angles, fitness = IoU between the rendered stick silhouette
and the target silhouette.

The intro benchmark runs this fitter and the Z-S thinning pipeline on the
same silhouettes and reports the wall-clock ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.points import Point
from repro.imaging.image import ensure_binary
from repro.synth.body import BodyDimensions, BodyPose, JointAngles
from repro.synth.renderer import RenderSettings, render_silhouette
from repro.utils.rng import ensure_rng

#: Genome layout: pelvis_row, pelvis_col, then joint angles in degrees.
_ANGLE_GENES = ("trunk", "neck", "shoulder", "elbow", "hip", "knee", "ankle")
_GENE_COUNT = 2 + len(_ANGLE_GENES)

#: Per-gene mutation scale (pixels for pelvis, degrees for angles).
_GENE_SCALE = np.array([6.0, 6.0, 8.0, 6.0, 25.0, 15.0, 20.0, 20.0, 12.0])

_ANGLE_LOW = np.array([-20.0, -20.0, -70.0, -10.0, -20.0, -5.0, -30.0])
_ANGLE_HIGH = np.array([70.0, 30.0, 185.0, 60.0, 110.0, 130.0, 60.0])


@dataclass(frozen=True)
class GAConfig:
    """Genetic-algorithm hyper-parameters (defaults sized like [1])."""

    population_size: int = 40
    generations: int = 30
    tournament_size: int = 3
    crossover_rate: float = 0.7
    mutation_rate: float = 0.3
    elitism: int = 2

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise ConfigurationError("population_size must be >= 4")
        if self.generations < 1:
            raise ConfigurationError("generations must be >= 1")
        if not (1 <= self.tournament_size <= self.population_size):
            raise ConfigurationError("tournament_size out of range")
        if self.elitism >= self.population_size:
            raise ConfigurationError("elitism must be < population_size")


@dataclass(frozen=True)
class GAFitResult:
    """Outcome of fitting one silhouette."""

    angles: JointAngles
    pelvis_row: float
    pelvis_col: float
    fitness: float
    fitness_history: "tuple[float, ...]"
    evaluations: int

    def body_pose(self, settings: RenderSettings) -> BodyPose:
        """The fitted pose in world coordinates."""
        return BodyPose(
            angles=self.angles,
            pelvis=Point(self.pelvis_col, settings.ground_row - self.pelvis_row),
        )


class GeneticSkeletonFitter:
    """Fit a user-dimensioned stick model to silhouettes with a GA."""

    def __init__(
        self,
        dims: "BodyDimensions | None" = None,
        config: "GAConfig | None" = None,
    ) -> None:
        # The stick sizes are the *user-supplied* input the paper
        # complains about; defaults match the studio's default body.
        self.dims = dims or BodyDimensions()
        self.config = config or GAConfig()

    # ------------------------------------------------------------------
    # Fitness
    # ------------------------------------------------------------------
    def _fitness(
        self, genome: np.ndarray, target: np.ndarray, settings: RenderSettings
    ) -> float:
        angles = JointAngles(**dict(zip(_ANGLE_GENES, genome[2:].tolist())))
        pose = BodyPose(
            angles=angles,
            pelvis=Point(float(genome[1]), settings.ground_row - float(genome[0])),
        )
        rendered = render_silhouette(pose, self.dims, settings)
        union = np.logical_or(rendered, target).sum()
        if union == 0:
            return 0.0
        return float(np.logical_and(rendered, target).sum() / union)

    def _initial_population(
        self, target: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        rows, cols = np.nonzero(target)
        center_row = float(rows.mean())
        center_col = float(cols.mean())
        population = np.zeros((self.config.population_size, _GENE_COUNT))
        population[:, 0] = rng.normal(center_row, 10.0, self.config.population_size)
        population[:, 1] = rng.normal(center_col, 10.0, self.config.population_size)
        for gene in range(len(_ANGLE_GENES)):
            population[:, 2 + gene] = rng.uniform(
                _ANGLE_LOW[gene], _ANGLE_HIGH[gene], self.config.population_size
            )
        return population

    def _clip(self, genome: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
        clipped = genome.copy()
        clipped[0] = np.clip(clipped[0], 0, shape[0] - 1)
        clipped[1] = np.clip(clipped[1], 0, shape[1] - 1)
        clipped[2:] = np.clip(clipped[2:], _ANGLE_LOW, _ANGLE_HIGH)
        return clipped

    # ------------------------------------------------------------------
    # Evolution loop
    # ------------------------------------------------------------------
    def fit(
        self,
        silhouette: np.ndarray,
        seed: "int | np.random.Generator | None" = None,
    ) -> GAFitResult:
        """Evolve a stick-model pose that covers the silhouette."""
        target = ensure_binary(silhouette)
        if not target.any():
            raise ConfigurationError("cannot fit a stick model to an empty silhouette")
        settings = RenderSettings(
            shape=target.shape, ground_row=target.shape[0] - 1
        )
        rng = ensure_rng(seed)
        config = self.config
        population = self._initial_population(target, rng)
        fitness = np.array(
            [self._fitness(g, target, settings) for g in population]
        )
        evaluations = len(population)
        history: list[float] = [float(fitness.max())]

        for _generation in range(config.generations):
            order = np.argsort(fitness)[::-1]
            next_population = [population[i].copy() for i in order[: config.elitism]]
            while len(next_population) < config.population_size:
                parents = []
                for _ in range(2):
                    contenders = rng.integers(
                        0, config.population_size, config.tournament_size
                    )
                    winner = contenders[np.argmax(fitness[contenders])]
                    parents.append(population[winner])
                if rng.random() < config.crossover_rate:
                    blend = rng.random(_GENE_COUNT)
                    child = blend * parents[0] + (1 - blend) * parents[1]
                else:
                    child = parents[0].copy()
                mutate = rng.random(_GENE_COUNT) < config.mutation_rate
                child = child + mutate * rng.normal(0, _GENE_SCALE)
                next_population.append(self._clip(child, target.shape))
            population = np.stack(next_population)
            fitness = np.array(
                [self._fitness(g, target, settings) for g in population]
            )
            evaluations += len(population)
            history.append(float(fitness.max()))

        best = population[int(np.argmax(fitness))]
        return GAFitResult(
            angles=JointAngles(**dict(zip(_ANGLE_GENES, best[2:].tolist()))),
            pelvis_row=float(best[0]),
            pelvis_col=float(best[1]),
            fitness=float(fitness.max()),
            fitness_history=tuple(history),
            evaluations=evaluations,
        )
