"""A pose HMM without the jumping-stage flag.

Identical observation model and previous-pose conditioning as the full
system, but the transition matrix is a flat ``P(pose_t | pose_{t-1})``
with no stage variable and no stage masking.  Comparing this against the
full DBN isolates exactly what §4's "jumping stage flag" contributes
(namely, keeping the before-jumping and landing twins apart).
"""

from __future__ import annotations

import numpy as np

from repro.bayes.cpd import TabularCPD
from repro.bayes.dbn import TwoSliceDBN, previous_slice
from repro.bayes.factor import Factor
from repro.bayes.variables import Variable
from repro.core.dbnclassifier import FramePrediction
from repro.core.posebank import PoseObservationModel
from repro.core.poses import INITIAL_POSE, NUM_POSES, POSE_STAGE, Pose
from repro.errors import LearningError, ModelError
from repro.features.encoding import FeatureVector


class PoseHMMClassifier:
    """Temporal pose decoding without the stage flag."""

    def __init__(
        self,
        observation: PoseObservationModel,
        alpha: float = 0.3,
        decode: str = "smooth",
    ) -> None:
        if not observation.is_fitted:
            raise ModelError("observation model must be fitted")
        if decode not in ("filter", "smooth", "viterbi"):
            raise ModelError(f"decode must be filter/smooth/viterbi, got {decode!r}")
        self.observation = observation
        self.alpha = alpha
        self.decode = decode
        self._dbn: "TwoSliceDBN | None" = None

    def fit_transitions(self, sequences: "list[list[Pose]]") -> "PoseHMMClassifier":
        """Learn the flat pose-transition matrix from label sequences."""
        if not sequences or all(len(s) < 2 for s in sequences):
            raise LearningError("need at least one sequence of length >= 2")
        counts = np.full((NUM_POSES, NUM_POSES), self.alpha)
        for sequence in sequences:
            for previous, current in zip(sequence[:-1], sequence[1:]):
                counts[previous, current] += 1.0
        transition = counts / counts.sum(axis=1, keepdims=True)

        pose_var = Variable("pose", tuple(p.name for p in Pose))
        prior_values = np.zeros(NUM_POSES)
        prior_values[INITIAL_POSE] = 1.0
        prior = Factor((pose_var,), prior_values)
        cpd = TabularCPD(pose_var, (previous_slice(pose_var),), transition.T)
        self._dbn = TwoSliceDBN((pose_var,), prior, [cpd])
        return self

    def classify(
        self, frames: "list[list[FeatureVector]]"
    ) -> "list[FramePrediction]":
        """Decode a clip with the stage-free HMM."""
        if self._dbn is None:
            raise ModelError("call fit_transitions() before classify()")
        likelihoods = []
        for candidates in frames:
            scores = np.ones(NUM_POSES)
            if candidates:
                scores = np.zeros(NUM_POSES)
                for feature in candidates:
                    vector = self.observation.part_likelihood_vector(feature)
                    scores = np.maximum(scores, vector * feature.weight)
            likelihoods.append(scores)
        predictions: list[FramePrediction] = []
        if self.decode == "viterbi":
            for index in self._dbn.viterbi(likelihoods):
                pose = Pose(index)
                predictions.append(FramePrediction(pose, 1.0, POSE_STAGE[pose]))
        else:
            rows = (
                self._dbn.filter(likelihoods)
                if self.decode == "filter"
                else self._dbn.smooth(likelihoods)
            )
            for row in rows:
                pose = Pose(int(np.argmax(row)))
                predictions.append(
                    FramePrediction(pose, float(row[pose]), POSE_STAGE[pose])
                )
        return predictions
