"""Nearest-centroid feature matching — a non-probabilistic floor.

Each pose is represented by the per-part *modal* area observed in
training; a test feature votes for the pose with the fewest part
mismatches (Hamming distance over parts, unobserved counting as its own
symbol).  No probabilities, no temporal context: the floor any learned
model must clear.
"""

from __future__ import annotations

from collections import Counter

from repro.core.dbnclassifier import FramePrediction
from repro.core.poses import POSE_STAGE, Pose
from repro.errors import LearningError
from repro.features.encoding import FeatureVector
from repro.features.keypoints import PART_ORDER


class NearestCentroidClassifier:
    """Modal-code matching over the five part areas."""

    def __init__(self) -> None:
        self._centroids: "dict[Pose, tuple] | None" = None

    def fit(
        self, samples: "list[tuple[Pose, FeatureVector]]"
    ) -> "NearestCentroidClassifier":
        """Compute each pose's modal feature code."""
        if not samples:
            raise LearningError("cannot fit nearest-centroid on no samples")
        by_pose: dict[Pose, list[tuple]] = {}
        for pose, feature in samples:
            by_pose.setdefault(pose, []).append(feature.as_tuple())
        centroids: dict[Pose, tuple] = {}
        for pose, codes in by_pose.items():
            modal = tuple(
                Counter(code[i] for code in codes).most_common(1)[0][0]
                for i in range(len(PART_ORDER))
            )
            centroids[pose] = modal
        self._centroids = centroids
        return self

    @staticmethod
    def _distance(a: tuple, b: tuple) -> int:
        return sum(1 for x, y in zip(a, b) if x != y)

    def classify(
        self, frames: "list[list[FeatureVector]]"
    ) -> "list[FramePrediction]":
        """Per-frame nearest-centroid over all candidates."""
        if self._centroids is None:
            raise LearningError("call fit() before classify()")
        predictions: list[FramePrediction] = []
        previous = Pose(0)
        for candidates in frames:
            best_pose = previous  # carry the last decision through failures
            best_distance = len(PART_ORDER) + 1
            for feature in candidates:
                code = feature.as_tuple()
                for pose, centroid in self._centroids.items():
                    distance = self._distance(code, centroid)
                    if distance < best_distance:
                        best_distance = distance
                        best_pose = pose
            predictions.append(
                FramePrediction(best_pose, 0.0, POSE_STAGE[best_pose])
            )
            previous = best_pose
        return predictions
