"""The DBN pose classifier (§4.2): temporal decoding with ``Th_Pose``.

The paper's decision procedure, reproduced faithfully as the default
``greedy`` decoder:

1. frame 1 resets the jumping-stage flag to *before jumping* and the
   previous pose to "standing & hand overlap with body";
2. each frame scores every (candidate feature, pose) pair by
   ``P(feature | pose) * P(pose | previous pose, stage) * P(stage | flag)``;
3. ``Th_Pose`` lets rarer poses win over the dominant "standing & hand
   swung forward" class when their posterior clears a per-pose bar;
4. a frame whose best posterior stays below the acceptance floor is
   declared *Unknown*; the previous-pose input of the next frame then
   falls back to the most recently recognised pose (the §5 fix) instead
   of "Unknown";
5. the decided pose is fed to the next frame as the previous pose.

Two alternative decoders — exact forward ``filter``-ing and ``viterbi``
decoding over the joint (stage, pose) DBN — are provided for the
Figure 7 / ablation benchmarks; the paper itself uses the greedy rule.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.poses import (
    DOMINANT_POSE,
    INITIAL_POSE,
    NUM_POSES,
    POSE_STAGE,
    Pose,
    Stage,
)
from repro.core.posebank import PoseObservationModel
from repro.core.transitions import TransitionModel
from repro.errors import ConfigurationError, ModelError
from repro.features.encoding import FeatureVector

DECODE_MODES = ("greedy", "filter", "smooth", "viterbi")

#: ``(stage, pose)`` structural compatibility — a pose is possible only in
#: its own stage.  Constant over the taxonomy, so built once.
_STAGE_POSE_COMPATIBLE = np.array(
    [[POSE_STAGE[pose] == stage for pose in Pose] for stage in Stage]
)


@dataclass(frozen=True)
class FramePrediction:
    """Decoded result for one frame.

    ``pose`` is ``None`` for an *Unknown* frame.  ``posterior`` is the
    normalised probability of the decided pose (0 for Unknown);
    ``stage`` is the classifier's stage flag after the frame.
    """

    pose: "Pose | None"
    posterior: float
    stage: Stage

    @property
    def is_unknown(self) -> bool:
        return self.pose is None


@dataclass
class ClassifierConfig:
    """Decoding knobs.

    Args:
        decode: ``"smooth"`` (default — exact forward-backward posterior
            over the Fig 7(b) DBN, appropriate because clips are analysed
            as complete recordings), ``"greedy"`` (the paper's literal
            hard-decision rule), ``"filter"`` (exact causal filtering), or
            ``"viterbi"`` (MAP sequence).
        th_pose: per-pose override bar — when the dominant pose wins the
            argmax but some rarer pose's posterior exceeds this value, the
            rarer pose is emitted instead (§4.2's imbalance fix).  May be a
            scalar applied to every non-dominant pose or a per-pose dict.
        accept_min: posterior floor below which the frame is *Unknown*.
        unknown_fallback: keep feeding the most recently recognised pose
            as the previous pose across Unknown frames (§5's fix).  When
            False, an Unknown frame resets the previous pose to a uniform
            mixture — the behaviour the paper found harmful.
        use_occupancy: score with the Fig 7(a) area-occupancy likelihood
            instead of labelled part assignments.
    """

    decode: str = "smooth"
    th_pose: "float | dict[Pose, float]" = 0.0
    accept_min: float = 0.0
    unknown_fallback: bool = True
    use_occupancy: bool = False

    def __post_init__(self) -> None:
        if self.decode not in DECODE_MODES:
            raise ConfigurationError(
                f"decode must be one of {DECODE_MODES}, got {self.decode!r}"
            )
        if isinstance(self.th_pose, dict):
            for pose, value in self.th_pose.items():
                if not (0.0 <= value <= 1.0):
                    raise ConfigurationError(
                        f"th_pose[{pose.name}] must be in [0, 1], got {value}"
                    )
        elif not (0.0 <= float(self.th_pose) <= 1.0):
            raise ConfigurationError(f"th_pose must be in [0, 1], got {self.th_pose}")
        if not (0.0 <= self.accept_min <= 1.0):
            raise ConfigurationError(
                f"accept_min must be in [0, 1], got {self.accept_min}"
            )

    def threshold_for(self, pose: Pose) -> float:
        if isinstance(self.th_pose, dict):
            return float(self.th_pose.get(pose, 0.0))
        return float(self.th_pose)


class DBNPoseClassifier:
    """Temporal pose decoding over per-frame feature candidates."""

    def __init__(
        self,
        observation: PoseObservationModel,
        transitions: TransitionModel,
        config: "ClassifierConfig | None" = None,
    ) -> None:
        if not observation.is_fitted:
            raise ModelError("observation model must be fitted")
        if not transitions.is_fitted:
            raise ModelError("transition model must be fitted")
        self.observation = observation
        self.transitions = transitions
        self.config = config or ClassifierConfig()
        self._score_cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Observation scoring
    # ------------------------------------------------------------------
    #: Memo bound; the reachable feature space is tiny (area codes ^ parts
    #: actually observed), so this is a safety valve, not a tuning knob.
    _CACHE_LIMIT = 65536

    def clear_cache(self) -> None:
        """Drop memoised candidate scores (and reset the hit counters)."""
        self._score_cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    def _candidate_scores(self, feature: FeatureVector) -> np.ndarray:
        """Weighted per-pose likelihood of one candidate, memoised.

        Candidates recur heavily across frames (the assignment search
        enumerates the same few hypotheses whenever the skeleton shape
        repeats).  The cache holds the weight-independent likelihood
        vector keyed by the feature's discrete identity — the candidate's
        plausibility weight is applied at lookup, so memoised scoring is
        bit-exact and identical-area candidates share one entry.
        """
        return self._cached_raw_scores(feature) * feature.weight

    def _cached_raw_scores(self, feature: FeatureVector) -> np.ndarray:
        """Weight-independent per-pose likelihood vector, LRU-memoised.

        Eviction is bounded LRU (least-recently-used entry dropped one at
        a time), never a wholesale clear: a full cache mid-clip must not
        evict the hot candidates the very next frame re-scores.
        """
        key = (feature.as_tuple(), self.config.use_occupancy)
        vector = self._score_cache.get(key)
        if vector is not None:
            self.cache_hits += 1
            self._score_cache.move_to_end(key)
            return vector
        self.cache_misses += 1
        if self.config.use_occupancy:
            occupied = feature.occupied_areas()
            vector = np.array(
                [
                    self.observation.occupancy_likelihood(occupied, pose)
                    for pose in Pose
                ]
            )
        else:
            vector = self.observation.part_likelihood_vector(feature)
        vector.setflags(write=False)
        while len(self._score_cache) >= self._CACHE_LIMIT:
            self._score_cache.popitem(last=False)
        self._score_cache[key] = vector
        return vector

    def observation_vector(
        self, candidates: "list[FeatureVector]"
    ) -> np.ndarray:
        """``max over candidate assignments of P(feature | pose)`` per pose.

        The §4.2 assignment search: each hypothesis for Head/Hand labels
        produces a feature vector; every pose is scored by its best
        hypothesis.  An empty candidate list (skeleton failure) yields a
        flat vector — the temporal prior then carries the frame.
        """
        if not candidates:
            return np.ones(NUM_POSES)
        scores = np.zeros(NUM_POSES)
        for feature in candidates:
            scores = np.maximum(scores, self._candidate_scores(feature))
        return scores

    def observation_matrix(
        self, frames: "list[list[FeatureVector]]"
    ) -> np.ndarray:
        """Vectorised :meth:`observation_vector` over many frames at once.

        Gathers every frame's memoised candidate vectors into one score
        stack, applies all weights in one multiply, and reduces each
        frame's segment with ``np.maximum.reduceat`` — a segmented max,
        so row ``t`` is bit-identical to
        ``observation_vector(frames[t])``.  Frames with no candidates
        keep the flat all-ones row.
        """
        matrix = np.ones((len(frames), NUM_POSES))
        raws: "list[np.ndarray]" = []
        weights: "list[float]" = []
        starts: "list[int]" = []
        rows: "list[int]" = []
        for t, candidates in enumerate(frames):
            if not candidates:
                continue
            starts.append(len(raws))
            rows.append(t)
            for feature in candidates:
                raws.append(self._cached_raw_scores(feature))
                weights.append(feature.weight)
        if not raws:
            return matrix
        scores = np.stack(raws) * np.asarray(weights)[:, None]
        per_frame = np.maximum.reduceat(scores, np.asarray(starts), axis=0)
        # observation_vector folds from a zeros accumulator; mirror that
        matrix[rows] = np.maximum(per_frame, 0.0)
        return matrix

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def classify(
        self, frames: "list[list[FeatureVector]]"
    ) -> "list[FramePrediction]":
        """Decode a whole clip of per-frame feature candidates."""
        if self.config.decode == "greedy":
            return self._classify_greedy(frames)
        return self._classify_dbn(frames)

    def _select(
        self, posterior: np.ndarray
    ) -> "tuple[Pose | None, float]":
        """Apply the Th_Pose override and the acceptance floor."""
        best = Pose(int(np.argmax(posterior)))
        best_prob = float(posterior[best])
        if best == DOMINANT_POSE:
            override: "Pose | None" = None
            override_prob = 0.0
            for pose in Pose:
                if pose == DOMINANT_POSE:
                    continue
                bar = self.config.threshold_for(pose)
                if bar > 0 and posterior[pose] > bar and posterior[pose] > override_prob:
                    override = pose
                    override_prob = float(posterior[pose])
            if override is not None:
                best, best_prob = override, override_prob
        if best_prob < self.config.accept_min:
            return None, 0.0
        return best, best_prob

    def _classify_greedy(
        self, frames: "list[list[FeatureVector]]"
    ) -> "list[FramePrediction]":
        pose_table = self.transitions.pose_table  # (stage, prev, pose)
        stage_table = self.transitions.stage_table  # (prev_stage, stage)
        pose_stages = np.array([POSE_STAGE[p] for p in Pose])

        predictions: list[FramePrediction] = []
        previous: "Pose | None" = INITIAL_POSE
        last_recognized: Pose = INITIAL_POSE
        stage = Stage.BEFORE_JUMPING
        for candidates in frames:
            observation = self.observation_vector(candidates)
            if previous is not None:
                prior_prev = pose_table[pose_stages, previous, np.arange(NUM_POSES)]
            else:
                # Unknown previous pose without fallback: average over all
                # possible previous poses (a uniform mixture).
                prior_prev = pose_table[
                    pose_stages, :, np.arange(NUM_POSES)
                ].mean(axis=1)
            stage_prior = stage_table[stage, pose_stages]
            score = observation * prior_prev * stage_prior
            total = score.sum()
            if total <= 0:
                posterior = prior_prev * stage_prior
                posterior = posterior / posterior.sum()
            else:
                posterior = score / total
            pose, prob = self._select(posterior)
            if pose is None:
                predictions.append(FramePrediction(None, 0.0, stage))
                previous = last_recognized if self.config.unknown_fallback else None
                continue
            stage = POSE_STAGE[pose]
            previous = pose
            last_recognized = pose
            predictions.append(FramePrediction(pose, prob, stage))
        return predictions

    def joint_likelihood(
        self, candidates: "list[FeatureVector]"
    ) -> np.ndarray:
        """``P(obs | stage, pose)`` flattened over the joint state space.

        The observation is independent of the stage, but a pose outside
        its stage is structurally impossible; zeroing those entries keeps
        the joint consistent with the pose CPD mask.  Shared by batch DBN
        decoding and the streaming decoder so both score frames with the
        exact same float values.
        """
        observation = self.observation_vector(candidates)
        joint = np.where(_STAGE_POSE_COMPATIBLE, observation[None, :], 0.0)
        return joint.reshape(-1)

    def joint_likelihoods_of(
        self, frames: "list[list[FeatureVector]]"
    ) -> np.ndarray:
        """Vectorised :meth:`joint_likelihood`: ``(T, S)`` in one pass.

        Row ``t`` is bit-identical to ``joint_likelihood(frames[t])`` —
        the batched observation matrix is exact (see
        :meth:`observation_matrix`) and the stage mask is the same
        broadcast ``np.where``.
        """
        if not frames:
            return np.zeros((0, _STAGE_POSE_COMPATIBLE.size))
        observations = self.observation_matrix(frames)
        joint = np.where(
            _STAGE_POSE_COMPATIBLE[None, :, :], observations[:, None, :], 0.0
        )
        return joint.reshape(len(frames), -1)

    def prediction_from_joint(self, row: np.ndarray) -> FramePrediction:
        """Turn one joint-state posterior row into a :class:`FramePrediction`.

        Marginalises the (stage, pose) grid down to poses, then applies the
        Th_Pose override and acceptance floor exactly as batch decoding does.
        """
        grid = row.reshape(len(Stage), NUM_POSES)
        pose_marginal = grid.sum(axis=0)
        pose, prob = self._select(pose_marginal)
        if pose is None:
            stage_index = int(np.argmax(grid.sum(axis=1)))
            return FramePrediction(None, 0.0, Stage(stage_index))
        return FramePrediction(pose, prob, POSE_STAGE[pose])

    def _classify_dbn(
        self, frames: "list[list[FeatureVector]]"
    ) -> "list[FramePrediction]":
        """Exact filtering / Viterbi over the joint (stage, pose) DBN."""
        dbn = self.transitions.to_two_slice_dbn()
        likelihoods = list(self.joint_likelihoods_of(frames))
        predictions: list[FramePrediction] = []
        if self.config.decode in ("filter", "smooth"):
            if self.config.decode == "filter":
                filtered = dbn.filter(likelihoods)
            else:
                filtered = dbn.smooth(likelihoods)
            predictions.extend(self.prediction_from_joint(row) for row in filtered)
        else:  # viterbi
            path = dbn.viterbi(likelihoods)
            predictions.extend(self._predictions_from_path(dbn, path))
        return predictions

    @staticmethod
    def _predictions_from_path(dbn, path: "list[int]") -> "list[FramePrediction]":
        return [
            FramePrediction(
                Pose(assignment["pose"]), 1.0, Stage(assignment["stage"])
            )
            for assignment in (dbn.assignment_of(index) for index in path)
        ]

    def classify_batch(
        self, clips: "list[list[list[FeatureVector]]]"
    ) -> "list[list[FramePrediction]]":
        """Decode many clips through one batched tensor pass.

        Bit-identical to ``[self.classify(clip) for clip in clips]`` in
        every decode mode: observation scoring goes through the exact
        segmented-max batch path, and the DBN modes ride the
        ``*_batch`` kernels of :class:`~repro.bayes.dbn.TwoSliceDBN`,
        which replay the per-clip recursions (zero-likelihood recovery
        included) to the last bit.  ``greedy`` is inherently sequential
        per clip and simply loops.
        """
        if self.config.decode == "greedy":
            return [self._classify_greedy(clip) for clip in clips]
        dbn = self.transitions.to_two_slice_dbn()
        likelihoods = [self.joint_likelihoods_of(frames) for frames in clips]
        if self.config.decode in ("filter", "smooth"):
            if self.config.decode == "filter":
                decoded = dbn.filter_batch(likelihoods)
            else:
                decoded = dbn.smooth_batch(likelihoods)
            return [
                [self.prediction_from_joint(row) for row in rows]
                for rows in decoded
            ]
        paths = dbn.viterbi_batch(likelihoods)
        return [self._predictions_from_path(dbn, path) for path in paths]
