"""The per-pose Bayesian networks of Figure 7(a).

Each pose owns a network with one root node (the pose), five hidden nodes
(the body parts Head, Chest, Hand, Knee, Foot — each taking "which plane
area am I in" values, plus an *unobserved* state), and eight observed
nodes (Area I–VIII, empty/occupied).  Given the pose, parts are
conditionally independent; an area is occupied when some part lies in it
(a noisy-OR with a small leak for spurious key points and a miss
probability for dropped ones).

Two exact likelihood routines are provided:

* :meth:`PoseObservationModel.part_likelihood` — when the key points carry
  part labels (the paper's training phase, or a test-phase assignment
  hypothesis): a product of per-part area probabilities.
* :meth:`PoseObservationModel.occupancy_likelihood` — when only the
  *set* of occupied areas is known (the Fig 7a observed nodes):
  ``P(occupied set | pose)``, computed exactly by dynamic programming over
  area bitmasks (256 masks × 5 parts), then pushed through the per-area
  noise channel.  A brute-force enumeration in the tests validates it.

Parameters are learned with Dirichlet smoothing (§4's quantitative
training).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bayes.cpd import TabularCPD
from repro.bayes.network import BayesianNetwork
from repro.bayes.variables import Variable
from repro.core.poses import NUM_POSES, Pose
from repro.errors import ConfigurationError, LearningError, ModelError
from repro.features.encoding import FeatureVector
from repro.features.keypoints import PART_ORDER, BodyPart

#: Index of the "part not observed on the skeleton" pseudo-area.
MISSING = -1


@dataclass
class PoseObservationModel:
    """Learned ``P(part areas | pose)`` plus the area-occupancy channel.

    Args:
        n_areas: number of plane areas (paper: 8).
        alpha: Dirichlet pseudo-count for part-location CPDs.
        leak: probability an empty area still reports a key point
            (skeleton noise that survived pruning).
        miss: probability an area containing a part reports empty
            (key point lost to a merged limb).
    """

    n_areas: int = 8
    alpha: float = 0.5
    leak: float = 0.02
    miss: float = 0.05
    _location_probs: "np.ndarray | None" = field(default=None, repr=False)
    _occupancy_table: "np.ndarray | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n_areas < 2:
            raise ConfigurationError(f"n_areas must be >= 2, got {self.n_areas}")
        if not (0 <= self.leak < 1 and 0 <= self.miss < 1):
            raise ConfigurationError("leak and miss must be probabilities < 1")
        if self.alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {self.alpha}")

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self, samples: "list[tuple[Pose, FeatureVector]]"
    ) -> "PoseObservationModel":
        """Learn part-location distributions from labelled feature vectors.

        ``samples`` pairs each training frame's ground-truth pose with its
        encoded feature vector.  Counts are smoothed with ``alpha``; poses
        never seen in training fall back to a uniform location model.
        """
        if not samples:
            raise LearningError("cannot fit an observation model on no samples")
        n_parts = len(PART_ORDER)
        # Axis layout: [pose, part, area] with the last area index = MISSING.
        counts = np.zeros((NUM_POSES, n_parts, self.n_areas + 1))
        for pose, feature in samples:
            if feature.n_areas != self.n_areas:
                raise LearningError(
                    f"feature encoded over {feature.n_areas} areas, model expects "
                    f"{self.n_areas}"
                )
            for part_index, part in enumerate(PART_ORDER):
                area = feature.area_of(part)
                slot = self.n_areas if area is None else area
                counts[pose, part_index, slot] += 1.0
        smoothed = counts + self.alpha
        self._location_probs = smoothed / smoothed.sum(axis=2, keepdims=True)
        # The occupancy table is exponential in n_areas (2^n masks); it is
        # built lazily on first use so partition-count sweeps that never
        # touch the Fig 7(a) occupancy view stay cheap.
        self._occupancy_table = None
        return self

    @property
    def is_fitted(self) -> bool:
        return self._location_probs is not None

    def _require_fit(self) -> np.ndarray:
        if self._location_probs is None:
            raise ModelError("observation model is not fitted; call fit() first")
        return self._location_probs

    def location_distribution(self, pose: Pose, part: BodyPart) -> np.ndarray:
        """``P(area | pose, part)`` with the last entry = P(unobserved)."""
        probs = self._require_fit()
        return probs[pose, PART_ORDER.index(part)].copy()

    # ------------------------------------------------------------------
    # Likelihoods
    # ------------------------------------------------------------------
    def part_likelihood(self, feature: FeatureVector, pose: Pose) -> float:
        """``P(feature | pose)`` with labelled parts (product over parts)."""
        probs = self._require_fit()
        if feature.n_areas != self.n_areas:
            raise ModelError(
                f"feature has {feature.n_areas} areas, model has {self.n_areas}"
            )
        likelihood = 1.0
        for part_index, part in enumerate(PART_ORDER):
            area = feature.area_of(part)
            slot = self.n_areas if area is None else area
            likelihood *= float(probs[pose, part_index, slot])
        return likelihood

    def part_likelihood_vector(self, feature: FeatureVector) -> np.ndarray:
        """``P(feature | pose)`` for every pose at once (vectorised)."""
        probs = self._require_fit()
        result = np.ones(NUM_POSES)
        for part_index, part in enumerate(PART_ORDER):
            area = feature.area_of(part)
            slot = self.n_areas if area is None else area
            result *= probs[:, part_index, slot]
        return result

    def occupancy_likelihood(self, occupied: frozenset, pose: Pose) -> float:
        """``P(exactly this set of areas occupied | pose)`` (Fig 7a view)."""
        self._require_fit()
        if self._occupancy_table is None:
            if self.n_areas > 12:
                raise ModelError(
                    f"the occupancy view is exponential in areas; "
                    f"{self.n_areas} areas would need a 2^{self.n_areas} mask "
                    "table — use part likelihoods instead"
                )
            self._occupancy_table = self._build_occupancy_table()
        mask = 0
        for area in occupied:
            if not (0 <= int(area) < self.n_areas):
                raise ModelError(f"area {area} out of range 0..{self.n_areas - 1}")
            mask |= 1 << int(area)
        return float(self._occupancy_table[pose, mask])

    # ------------------------------------------------------------------
    # Occupancy machinery
    # ------------------------------------------------------------------
    def _coverage_distribution(self, pose_index: int) -> np.ndarray:
        """``P(covered-area bitmask | pose)`` by DP over the five parts."""
        probs = self._require_fit()
        n_masks = 1 << self.n_areas
        coverage = np.zeros(n_masks)
        coverage[0] = 1.0
        masks = np.arange(n_masks)
        for part_index in range(len(PART_ORDER)):
            location = probs[pose_index, part_index]
            updated = coverage * location[self.n_areas]  # part unobserved
            for area in range(self.n_areas):
                p = float(location[area])
                if p == 0.0:
                    continue
                shifted = np.zeros(n_masks)
                np.add.at(shifted, masks | (1 << area), coverage * p)
                updated = updated + shifted
            coverage = updated
        return coverage

    def _noise_channel(self) -> np.ndarray:
        """``P(observed mask | covered mask)`` factorised per area."""
        n_masks = 1 << self.n_areas
        channel = np.ones((n_masks, n_masks))
        for area in range(self.n_areas):
            bit = 1 << area
            covered = (np.arange(n_masks)[:, None] & bit) > 0
            observed = (np.arange(n_masks)[None, :] & bit) > 0
            prob = np.where(
                covered,
                np.where(observed, 1.0 - self.miss, self.miss),
                np.where(observed, self.leak, 1.0 - self.leak),
            )
            channel *= prob
        return channel

    def _build_occupancy_table(self) -> np.ndarray:
        """``P(observed mask | pose)`` for every pose and mask."""
        n_masks = 1 << self.n_areas
        channel = self._noise_channel()
        table = np.zeros((NUM_POSES, n_masks))
        for pose_index in range(NUM_POSES):
            coverage = self._coverage_distribution(pose_index)
            table[pose_index] = coverage @ channel
        return table

    # ------------------------------------------------------------------
    # Explicit Fig 7(a) network construction
    # ------------------------------------------------------------------
    def build_pose_network(self, pose: Pose) -> BayesianNetwork:
        """Materialise the Figure 7(a) BN for one pose.

        Structure: binary root ``Pose`` → five part nodes (area +
        "unobserved" states) → eight binary ``Area`` nodes with noisy-OR
        CPDs.  Under ``Pose = yes`` parts follow the learned distributions;
        under ``Pose = no`` they are uniform (the generic alternative).
        Intended for structural validation and the Figure 7 benchmark —
        the classifier's hot path uses the closed-form routines above.
        """
        probs = self._require_fit()
        pose_var = Variable("Pose", ("no", "yes"))
        network = BayesianNetwork(
            [TabularCPD(pose_var, (), np.array([0.5, 0.5]))]
        )
        part_vars: list[Variable] = []
        part_states = tuple(
            [f"area{area}" for area in range(self.n_areas)] + ["unobserved"]
        )
        for part_index, part in enumerate(PART_ORDER):
            variable = Variable(part.value, part_states)
            part_vars.append(variable)
            uniform = np.full(self.n_areas + 1, 1.0 / (self.n_areas + 1))
            table = np.stack([uniform, probs[pose, part_index]], axis=-1)
            network.add_cpd(TabularCPD(variable, (pose_var,), table))
        for area in range(self.n_areas):
            area_var = Variable.binary(f"Area{area + 1}")
            shape = (2,) + tuple(v.cardinality for v in part_vars)
            occupied = np.zeros(shape[1:], dtype=bool)
            for part_axis in range(len(part_vars)):
                index: list = [slice(None)] * len(part_vars)
                index[part_axis] = area
                occupied[tuple(index)] = True
            p_yes = np.where(occupied, 1.0 - self.miss, self.leak)
            table = np.stack([1.0 - p_yes, p_yes], axis=0)
            network.add_cpd(TabularCPD(area_var, tuple(part_vars), table))
        network.validate()
        return network
