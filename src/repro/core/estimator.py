"""The vision front-end: frames → silhouettes → skeletons → features.

This wires the §2/§3 substrates to the §4 feature encoding, in the two
flavours the paper uses:

* **supervised** (training, §4.1) — Head/Hand/Foot are *given*; here they
  come from the synthetic studio's ground-truth joints, snapped onto the
  extracted skeleton;
* **assignment search** (testing, §4.2) — Foot is the lowest endpoint and
  every Head/Hand hypothesis becomes a candidate feature vector for the
  classifier to score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import FeatureError, ImageError, SkeletonError
from repro.features.areas import PlanePartition
from repro.features.encoding import FeatureEncoder, FeatureVector
from repro.features.keypoints import KeypointExtractor
from repro.imaging.background import BackgroundSubtractor
from repro.skeleton.pipeline import Skeleton, SkeletonExtractor

if TYPE_CHECKING:  # avoid a runtime core ↔ synth import cycle
    from repro.synth.dataset import JumpClip


@dataclass
class VisionFrontEnd:
    """Configurable §2+§3+§4 feature extraction.

    Args:
        n_areas: plane partition sectors (paper: 8).
        n_rings: distance rings per sector (1 = the paper's encoding).
        th_object: extractor threshold ``Th_Object`` (paper: 20).
        min_branch_length: skeleton pruning threshold (paper: 10).
        thinner: thinning algorithm name.
    """

    n_areas: int = 8
    n_rings: int = 1
    th_object: float = 20.0
    min_branch_length: int = 10
    thinner: str = "zhangsuen"
    encoder: FeatureEncoder = field(init=False)
    keypoints: KeypointExtractor = field(default_factory=KeypointExtractor)

    def __post_init__(self) -> None:
        self.encoder = FeatureEncoder(
            partition=PlanePartition(n_areas=self.n_areas, n_rings=self.n_rings)
        )
        self._skeletonizer = SkeletonExtractor(
            thinner=self.thinner, min_branch_length=self.min_branch_length
        )

    @property
    def total_areas(self) -> int:
        """Distinct area codes produced by the encoder (sectors x rings)."""
        return self.encoder.partition.total_areas

    # ------------------------------------------------------------------
    # §2 + §3
    # ------------------------------------------------------------------
    def subtractor_for(self, background: np.ndarray) -> BackgroundSubtractor:
        """A §2 extractor fitted to one clip's background."""
        return BackgroundSubtractor(threshold=self.th_object).fit_background(
            background
        )

    def skeletonize(self, silhouette: np.ndarray) -> Skeleton:
        """§3 pipeline on a silhouette mask."""
        return self._skeletonizer.extract(silhouette)

    def skeleton_of_frame(
        self, frame: np.ndarray, subtractor: BackgroundSubtractor
    ) -> Skeleton:
        """Full §2→§3 path for one RGB frame."""
        return self.skeletonize(subtractor.extract(frame).mask)

    # ------------------------------------------------------------------
    # §4 features
    # ------------------------------------------------------------------
    def candidate_features(self, skeleton: Skeleton) -> "list[FeatureVector]":
        """Feature vectors for every Head/Hand assignment hypothesis.

        Each candidate carries a plausibility weight: hypotheses whose
        Head is not the topmost endpoint, or that leave the Hand
        unexplained, are geometrically possible but a priori less likely —
        the weight lets the classifier's max-scoring honour that without
        discarding the hypothesis.
        """
        from repro.features.keypoints import derive_keypoints

        endpoints = skeleton.graph.endpoints()
        if not endpoints:
            raise FeatureError("skeleton has no endpoints")
        top_row = min(p[0] for p in endpoints)
        features: list[FeatureVector] = []
        for assignment in self.keypoints.enumerate_assignments(skeleton):
            try:
                keypoints = derive_keypoints(skeleton.graph, assignment)
            except FeatureError:
                continue
            weight = 1.0
            if assignment.head[0] > top_row + 2:
                weight *= 0.5
            if assignment.hand is None:
                weight *= 0.7
            elif assignment.hand == assignment.head:
                weight *= 0.85
            features.append(self.encoder.encode(keypoints, weight=weight))
        if not features:
            raise FeatureError("no feasible key-point assignment on this skeleton")
        return features

    def candidates_for_clip(
        self, frames: "list[np.ndarray] | tuple[np.ndarray, ...]",
        background: np.ndarray,
    ) -> "list[list[FeatureVector]]":
        """Per-frame candidate features for a whole clip.

        Frames whose extraction or skeletonisation fails contribute an
        empty candidate list; the classifier's temporal prior carries them.
        """
        subtractor = self.subtractor_for(background)
        result: list[list[FeatureVector]] = []
        for frame in frames:
            try:
                skeleton = self.skeleton_of_frame(frame, subtractor)
                result.append(self.candidate_features(skeleton))
            except (ImageError, SkeletonError, FeatureError):
                result.append([])
        return result

    def supervised_features(
        self, clip: "JumpClip"
    ) -> "list[tuple[int, FeatureVector]]":
        """Training-phase features with ground-truth part anchors (§4.1).

        Returns ``(frame index, feature)`` pairs; frames where the skeleton
        or key points cannot be recovered are skipped (and simply do not
        contribute training counts, as in any real labelling session).
        """
        subtractor = self.subtractor_for(clip.background)
        samples: list[tuple[int, FeatureVector]] = []
        for index, frame in enumerate(clip.frames):
            try:
                skeleton = self.skeleton_of_frame(frame, subtractor)
                refs = clip.joints[index]
                keypoints = self.keypoints.extract_with_reference(
                    skeleton,
                    head_ref=refs["head_top"],
                    hand_ref=refs["fingertip"],
                    foot_ref=refs["toe"],
                )
                samples.append((index, self.encoder.encode(keypoints)))
            except (ImageError, SkeletonError, FeatureError):
                continue
        return samples
