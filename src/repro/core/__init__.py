"""The paper's primary contribution: DBN pose estimation for jumps.

Public surface:

* :class:`~repro.core.poses.Pose` / :class:`~repro.core.poses.Stage` —
  the 22-pose, 4-stage taxonomy;
* :class:`~repro.core.posebank.PoseObservationModel` — the Fig 7(a)
  per-pose networks;
* :class:`~repro.core.transitions.TransitionModel` — the Fig 7(b)
  temporal structure;
* :class:`~repro.core.dbnclassifier.DBNPoseClassifier` — §4.2 decoding;
* :class:`~repro.core.pipeline.JumpPoseAnalyzer` — the end-to-end system.
"""

from repro.core.poses import (
    DOMINANT_POSE,
    INITIAL_POSE,
    NUM_POSES,
    NUM_STAGES,
    POSE_LABELS,
    POSE_STAGE,
    Pose,
    Stage,
    poses_of_stage,
    stage_can_follow,
)
from repro.core.posebank import MISSING, PoseObservationModel
from repro.core.transitions import TransitionModel, pose_stage_mask, stage_mask
from repro.core.dbnclassifier import (
    ClassifierConfig,
    DBNPoseClassifier,
    FramePrediction,
)
from repro.core.estimator import VisionFrontEnd
from repro.core.trainer import TrainedModels, TrainingReport, train_models
from repro.core.results import ClipResult, EvaluationResult, FrameResult
from repro.core.pipeline import AnalyzerSettings, JumpPoseAnalyzer

__all__ = [
    "DOMINANT_POSE",
    "INITIAL_POSE",
    "NUM_POSES",
    "NUM_STAGES",
    "POSE_LABELS",
    "POSE_STAGE",
    "Pose",
    "Stage",
    "poses_of_stage",
    "stage_can_follow",
    "MISSING",
    "PoseObservationModel",
    "TransitionModel",
    "pose_stage_mask",
    "stage_mask",
    "ClassifierConfig",
    "DBNPoseClassifier",
    "FramePrediction",
    "VisionFrontEnd",
    "TrainedModels",
    "TrainingReport",
    "train_models",
    "ClipResult",
    "EvaluationResult",
    "FrameResult",
    "AnalyzerSettings",
    "JumpPoseAnalyzer",
]
