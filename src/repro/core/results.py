"""Result containers and accuracy accounting for pose-estimation runs.

The paper reports per-clip frame accuracy (81–87% on its three test clips)
and remarks that "most errors ... occurred in consecutive frames"; these
containers compute both statistics, plus the confusion matrix used by the
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.poses import NUM_POSES, Pose
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FrameResult:
    """Ground truth vs prediction for one frame."""

    index: int
    truth: Pose
    predicted: "Pose | None"
    posterior: float = 0.0

    @property
    def is_correct(self) -> bool:
        return self.predicted is not None and self.predicted == self.truth

    @property
    def is_unknown(self) -> bool:
        return self.predicted is None


@dataclass(frozen=True)
class ClipResult:
    """All frame results of one clip."""

    clip_id: str
    frames: "tuple[FrameResult, ...]"

    def __post_init__(self) -> None:
        if not self.frames:
            raise ConfigurationError(f"clip result {self.clip_id!r} has no frames")

    @property
    def accuracy(self) -> float:
        """Fraction of frames classified correctly (Unknown counts wrong)."""
        return sum(f.is_correct for f in self.frames) / len(self.frames)

    @property
    def unknown_rate(self) -> float:
        return sum(f.is_unknown for f in self.frames) / len(self.frames)

    def quality(self, thresholds=None):
        """Pose-quality diagnostics for this clip (see :mod:`repro.obs.quality`).

        Derived deterministically from :attr:`frames`, so the signals
        never enter equality or the wire codec's identity contract:
        local, served, and routed copies of the same result agree on
        them by construction.

        Args:
            thresholds: optional
                :class:`~repro.obs.quality.QualityThresholds`; the
                serving-wide defaults apply when omitted.

        Returns:
            A :class:`~repro.obs.quality.ClipQuality` with
            low-likelihood, pose-teleport, and stage-violation counts
            plus the ``flagged`` verdict.
        """
        # Imported lazily: core must not hard-depend on the telemetry
        # subsystem (mirrors the serving.artifacts pattern above).
        from repro.obs.quality import clip_quality

        return clip_quality(self.frames, thresholds)

    def error_runs(self) -> "list[int]":
        """Lengths of maximal runs of consecutive misclassified frames."""
        runs: list[int] = []
        current = 0
        for frame in self.frames:
            if frame.is_correct:
                if current:
                    runs.append(current)
                current = 0
            else:
                current += 1
        if current:
            runs.append(current)
        return runs

    def consecutive_error_fraction(self) -> float:
        """Fraction of errors that sit in a run of length >= 2.

        The paper observes most errors are consecutive; this is the
        quantity the Table 1 benchmark reports for that claim.
        """
        runs = self.error_runs()
        total_errors = sum(runs)
        if total_errors == 0:
            return 0.0
        return sum(r for r in runs if r >= 2) / total_errors


@dataclass(frozen=True)
class EvaluationResult:
    """Results over a whole test set."""

    clips: "tuple[ClipResult, ...]"

    def __post_init__(self) -> None:
        if not self.clips:
            raise ConfigurationError("evaluation needs at least one clip result")

    @property
    def per_clip_accuracy(self) -> "dict[str, float]":
        return {clip.clip_id: clip.accuracy for clip in self.clips}

    @property
    def overall_accuracy(self) -> float:
        total = sum(len(clip.frames) for clip in self.clips)
        correct = sum(
            sum(f.is_correct for f in clip.frames) for clip in self.clips
        )
        return correct / total

    @property
    def min_accuracy(self) -> float:
        return min(clip.accuracy for clip in self.clips)

    @property
    def max_accuracy(self) -> float:
        return max(clip.accuracy for clip in self.clips)

    def confusion_matrix(self) -> np.ndarray:
        """``(true, predicted)`` counts; the extra last column is Unknown."""
        matrix = np.zeros((NUM_POSES, NUM_POSES + 1), dtype=np.int64)
        for clip in self.clips:
            for frame in clip.frames:
                column = NUM_POSES if frame.predicted is None else int(frame.predicted)
                matrix[int(frame.truth), column] += 1
        return matrix

    def consecutive_error_fraction(self) -> float:
        """Pooled fraction of errors occurring in runs of length >= 2."""
        total_errors = 0
        consecutive = 0
        for clip in self.clips:
            runs = clip.error_runs()
            total_errors += sum(runs)
            consecutive += sum(r for r in runs if r >= 2)
        if total_errors == 0:
            return 0.0
        return consecutive / total_errors

    def per_stage_accuracy(self) -> "dict[str, float]":
        """Frame accuracy split by the ground-truth jump stage."""
        from repro.core.poses import POSE_STAGE, Stage

        correct = {stage: 0 for stage in Stage}
        total = {stage: 0 for stage in Stage}
        for clip in self.clips:
            for frame in clip.frames:
                stage = POSE_STAGE[frame.truth]
                total[stage] += 1
                correct[stage] += int(frame.is_correct)
        return {
            stage.label: (correct[stage] / total[stage] if total[stage] else 0.0)
            for stage in Stage
        }

    def top_confusions(self, limit: int = 8) -> "list[tuple[str, str, int]]":
        """Most frequent (true, predicted) error pairs, Unknown included."""
        matrix = self.confusion_matrix()
        pairs: list[tuple[str, str, int]] = []
        for true_index in range(NUM_POSES):
            for pred_index in range(NUM_POSES + 1):
                if true_index == pred_index:
                    continue
                count = int(matrix[true_index, pred_index])
                if count > 0:
                    predicted = (
                        "Unknown" if pred_index == NUM_POSES
                        else Pose(pred_index).name
                    )
                    pairs.append((Pose(true_index).name, predicted, count))
        pairs.sort(key=lambda item: (-item[2], item[0], item[1]))
        return pairs[:limit]

    def summary(self) -> str:
        """Multi-line report mirroring the paper's §5 numbers."""
        lines = [
            f"{clip.clip_id}: accuracy {clip.accuracy:.1%} over "
            f"{len(clip.frames)} frames (unknown {clip.unknown_rate:.1%})"
            for clip in self.clips
        ]
        lines.append(
            f"overall: {self.overall_accuracy:.1%} "
            f"(range {self.min_accuracy:.1%} – {self.max_accuracy:.1%}); "
            f"consecutive-error fraction {self.consecutive_error_fraction():.1%}"
        )
        return "\n".join(lines)
