"""Training phase (§4.1): fit the observation and transition models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.estimator import VisionFrontEnd
from repro.core.posebank import PoseObservationModel
from repro.core.poses import Pose
from repro.core.transitions import TransitionModel
from repro.errors import LearningError
from repro.features.encoding import FeatureVector

if TYPE_CHECKING:  # avoid a runtime core ↔ synth import cycle
    from repro.synth.dataset import JumpClip


@dataclass(frozen=True)
class TrainingReport:
    """Bookkeeping from one training run.

    Attributes:
        total_frames: frames across all training clips.
        used_frames: frames that produced a usable feature vector.
        pose_counts: training-frame count per pose (the §4.2 imbalance).
    """

    total_frames: int
    used_frames: int
    pose_counts: "dict[Pose, int]"

    @property
    def skipped_frames(self) -> int:
        return self.total_frames - self.used_frames

    @property
    def dominant_fraction(self) -> float:
        """Share of training frames belonging to the most frequent pose."""
        if not self.pose_counts:
            return 0.0
        return max(self.pose_counts.values()) / max(1, sum(self.pose_counts.values()))


@dataclass(frozen=True)
class TrainedModels:
    """The two fitted model components plus the training report."""

    observation: PoseObservationModel
    transitions: TransitionModel
    report: TrainingReport


def train_models(
    clips: "list[JumpClip] | tuple[JumpClip, ...]",
    front_end: "VisionFrontEnd | None" = None,
    observation_alpha: float = 0.5,
    transition_alpha: float = 0.5,
    leak: float = 0.02,
    miss: float = 0.05,
) -> TrainedModels:
    """Run §4.1 training over labelled clips.

    The observation model learns from supervised feature vectors (vision
    pipeline output anchored by ground-truth Head/Hand/Foot); the
    transition model learns from the ground-truth pose sequences of *all*
    frames, since transitions need no vision.
    """
    if not clips:
        raise LearningError("training needs at least one clip")
    front_end = front_end or VisionFrontEnd()

    samples: list[tuple[Pose, FeatureVector]] = []
    total = 0
    pose_counts: dict[Pose, int] = {}
    for clip in clips:
        total += len(clip)
        for index, feature in front_end.supervised_features(clip):
            pose = clip.labels[index]
            samples.append((pose, feature))
            pose_counts[pose] = pose_counts.get(pose, 0) + 1
    if not samples:
        raise LearningError(
            "no training clip produced a single usable feature vector; "
            "check the extraction settings"
        )

    observation = PoseObservationModel(
        n_areas=front_end.total_areas, alpha=observation_alpha, leak=leak, miss=miss
    ).fit(samples)
    transitions = TransitionModel(alpha=transition_alpha).fit(
        [list(clip.labels) for clip in clips]
    )
    report = TrainingReport(
        total_frames=total, used_frames=len(samples), pose_counts=pose_counts
    )
    return TrainedModels(
        observation=observation, transitions=transitions, report=report
    )
