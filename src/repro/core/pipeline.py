"""End-to-end facade: train on clips, decode clips, score against truth.

:class:`JumpPoseAnalyzer` is the public face of the reproduction — the
"system" of the paper's abstract: silhouette extraction, thinning-based
skeletonisation, key-point encoding, and DBN pose decoding behind two
calls (:meth:`train` and :meth:`analyze_clip`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.dbnclassifier import (
    ClassifierConfig,
    DBNPoseClassifier,
    FramePrediction,
)
from repro.core.estimator import VisionFrontEnd
from repro.core.results import ClipResult, EvaluationResult, FrameResult
from repro.core.trainer import TrainedModels, train_models
from repro.errors import ModelError

if TYPE_CHECKING:  # avoid a runtime core ↔ synth import cycle
    from repro.synth.dataset import JumpClip


@dataclass
class AnalyzerSettings:
    """Everything configurable about the full system, with paper defaults."""

    n_areas: int = 8
    n_rings: int = 1
    th_object: float = 20.0
    min_branch_length: int = 10
    thinner: str = "zhangsuen"
    observation_alpha: float = 0.25
    transition_alpha: float = 0.3
    leak: float = 0.02
    miss: float = 0.05
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)

    def front_end(self) -> VisionFrontEnd:
        return VisionFrontEnd(
            n_areas=self.n_areas,
            n_rings=self.n_rings,
            th_object=self.th_object,
            min_branch_length=self.min_branch_length,
            thinner=self.thinner,
        )


class JumpPoseAnalyzer:
    """The trained system: vision front-end + DBN classifier."""

    def __init__(
        self,
        front_end: VisionFrontEnd,
        models: TrainedModels,
        classifier_config: "ClassifierConfig | None" = None,
    ) -> None:
        self.front_end = front_end
        self.models = models
        self.classifier = DBNPoseClassifier(
            models.observation, models.transitions, classifier_config
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        clips: "list[JumpClip] | tuple[JumpClip, ...]",
        settings: "AnalyzerSettings | None" = None,
    ) -> "JumpPoseAnalyzer":
        """Train the full system on labelled clips (§4.1)."""
        settings = settings or AnalyzerSettings()
        front_end = settings.front_end()
        models = train_models(
            clips,
            front_end,
            observation_alpha=settings.observation_alpha,
            transition_alpha=settings.transition_alpha,
            leak=settings.leak,
            miss=settings.miss,
        )
        return cls(front_end, models, settings.classifier)

    def with_classifier(self, config: ClassifierConfig) -> "JumpPoseAnalyzer":
        """Same trained models, different decoding configuration."""
        return JumpPoseAnalyzer(self.front_end, self.models, config)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_frames(
        self,
        frames: "list[np.ndarray] | tuple[np.ndarray, ...]",
        background: np.ndarray,
    ) -> "list[FramePrediction]":
        """Decode raw RGB frames against a clip background (§4.2)."""
        candidates = self.front_end.candidates_for_clip(frames, background)
        return self.classifier.classify(candidates)

    def analyze_clip(self, clip: JumpClip) -> ClipResult:
        """Decode one clip and score against its ground truth."""
        predictions = self.predict_frames(clip.frames, clip.background)
        if len(predictions) != len(clip):
            raise ModelError(
                f"prediction count {len(predictions)} does not match clip "
                f"length {len(clip)}"
            )
        frames = tuple(
            FrameResult(
                index=i,
                truth=clip.labels[i],
                predicted=prediction.pose,
                posterior=prediction.posterior,
            )
            for i, prediction in enumerate(predictions)
        )
        return ClipResult(clip_id=clip.clip_id, frames=frames)

    def evaluate(
        self, clips: "list[JumpClip] | tuple[JumpClip, ...]"
    ) -> EvaluationResult:
        """Decode and score a whole test set (the paper's §5 table)."""
        return EvaluationResult(
            clips=tuple(self.analyze_clip(clip) for clip in clips)
        )
