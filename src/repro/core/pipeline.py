"""End-to-end facade: train on clips, decode clips, score against truth.

:class:`JumpPoseAnalyzer` is the public face of the reproduction — the
"system" of the paper's abstract: silhouette extraction, thinning-based
skeletonisation, key-point encoding, and DBN pose decoding behind two
calls (:meth:`train` and :meth:`analyze_clip`).  :meth:`analyze_clips`
is the batch entry point for the many-recordings workload: deterministic
ordering, optional stage profiling, and an optional ``multiprocessing``
pool for clip-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.dbnclassifier import (
    ClassifierConfig,
    DBNPoseClassifier,
    FramePrediction,
)
from repro.core.estimator import VisionFrontEnd
from repro.core.results import ClipResult, EvaluationResult, FrameResult
from repro.core.trainer import TrainedModels, train_models
from repro.errors import ConfigurationError, ModelError
from repro.perf.timing import ProfileReport

if TYPE_CHECKING:  # avoid a runtime core ↔ synth import cycle
    from repro.serving.streaming import StreamingSession
    from repro.synth.dataset import JumpClip

# Pool workers receive the analyzer once via the initializer instead of
# pickling it into every task.
_POOL_ANALYZER: "JumpPoseAnalyzer | None" = None


def _pool_init(analyzer: "JumpPoseAnalyzer") -> None:
    global _POOL_ANALYZER
    _POOL_ANALYZER = analyzer


def _pool_analyze(clip: "JumpClip") -> ClipResult:
    assert _POOL_ANALYZER is not None
    return _POOL_ANALYZER.analyze_clip(clip)


def _pool_analyze_profiled(
    clip: "JumpClip",
) -> "tuple[ClipResult, ProfileReport]":
    """Pool task that ships its per-stage report back to the parent."""
    assert _POOL_ANALYZER is not None
    profile = ProfileReport()
    result = _POOL_ANALYZER.analyze_clip(clip, profile)
    return result, profile


@dataclass
class AnalyzerSettings:
    """Everything configurable about the full system, with paper defaults."""

    n_areas: int = 8
    n_rings: int = 1
    th_object: float = 20.0
    min_branch_length: int = 10
    thinner: str = "zhangsuen"
    observation_alpha: float = 0.25
    transition_alpha: float = 0.3
    leak: float = 0.02
    miss: float = 0.05
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)

    def front_end(self) -> VisionFrontEnd:
        return VisionFrontEnd(
            n_areas=self.n_areas,
            n_rings=self.n_rings,
            th_object=self.th_object,
            min_branch_length=self.min_branch_length,
            thinner=self.thinner,
        )


class JumpPoseAnalyzer:
    """The trained system: vision front-end + DBN classifier."""

    def __init__(
        self,
        front_end: VisionFrontEnd,
        models: TrainedModels,
        classifier_config: "ClassifierConfig | None" = None,
    ) -> None:
        self.front_end = front_end
        self.models = models
        self.classifier = DBNPoseClassifier(
            models.observation, models.transitions, classifier_config
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        clips: "list[JumpClip] | tuple[JumpClip, ...]",
        settings: "AnalyzerSettings | None" = None,
    ) -> "JumpPoseAnalyzer":
        """Train the full system on labelled clips (§4.1)."""
        settings = settings or AnalyzerSettings()
        front_end = settings.front_end()
        models = train_models(
            clips,
            front_end,
            observation_alpha=settings.observation_alpha,
            transition_alpha=settings.transition_alpha,
            leak=settings.leak,
            miss=settings.miss,
        )
        return cls(front_end, models, settings.classifier)

    def with_classifier(self, config: ClassifierConfig) -> "JumpPoseAnalyzer":
        """Same trained models, different decoding configuration."""
        return JumpPoseAnalyzer(self.front_end, self.models, config)

    # ------------------------------------------------------------------
    # Persistence (delegates to repro.serving.artifacts; lazy imports
    # keep core free of a hard serving dependency)
    # ------------------------------------------------------------------
    def save(self, path: "str | Path") -> Path:
        """Write this trained system as a versioned model artifact.

        Args:
            path: target file; ``.npz`` is appended if missing.

        Returns:
            The path actually written.

        Raises:
            ModelError: the analyzer's models are not fitted.
        """
        from repro.serving.artifacts import save_analyzer

        return save_analyzer(self, path)

    @classmethod
    def load(cls, path: "str | Path") -> "JumpPoseAnalyzer":
        """Reload a saved artifact; predictions are bit-identical.

        Args:
            path: a file written by :meth:`save`.

        Returns:
            A trained analyzer reproducing the saved one's predictions
            to the last bit in every decode mode.

        Raises:
            ModelError: missing file, corrupt archive, foreign schema,
                or artifact-version mismatch.
        """
        from repro.serving.artifacts import load_analyzer

        return load_analyzer(path)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_frames(
        self,
        frames: "list[np.ndarray] | tuple[np.ndarray, ...]",
        background: np.ndarray,
    ) -> "list[FramePrediction]":
        """Decode raw RGB frames against a clip background (§4.2)."""
        candidates = self.front_end.candidates_for_clip(frames, background)
        return self.classifier.classify(candidates)

    def stream(
        self, background: np.ndarray, lag: int = 0
    ) -> "StreamingSession":
        """Open a frame-at-a-time decoding session against a background.

        Args:
            background: the clip's background frame (RGB array), used
                for silhouette extraction on every pushed frame.
            lag: 0 filters causally (bit-identical to batch ``filter``
                decoding); ``L > 0`` emits each frame smoothed over the
                next ``L`` observations.  See
                :mod:`repro.serving.streaming`.

        Returns:
            A :class:`~repro.serving.streaming.StreamingSession`
            accepting raw RGB frames via ``push_frame``.

        Raises:
            ConfigurationError: ``lag`` is negative.
        """
        from repro.serving.streaming import StreamingSession

        return StreamingSession(self, background, lag=lag)

    def _result_for(
        self, clip: JumpClip, predictions: "list[FramePrediction]"
    ) -> ClipResult:
        if len(predictions) != len(clip):
            raise ModelError(
                f"prediction count {len(predictions)} does not match clip "
                f"length {len(clip)}"
            )
        frames = tuple(
            FrameResult(
                index=i,
                truth=clip.labels[i],
                predicted=prediction.pose,
                posterior=prediction.posterior,
            )
            for i, prediction in enumerate(predictions)
        )
        return ClipResult(clip_id=clip.clip_id, frames=frames)

    def analyze_clip(
        self, clip: JumpClip, profile: "ProfileReport | None" = None
    ) -> ClipResult:
        """Decode one clip and score against its ground truth.

        ``profile`` (optional) accumulates wall-clock for the vision
        front-end and the DBN decode as separate stages.
        """
        if profile is None:
            predictions = self.predict_frames(clip.frames, clip.background)
            return self._result_for(clip, predictions)
        with profile.stage("frontend"):
            candidates = self.front_end.candidates_for_clip(
                clip.frames, clip.background
            )
        with profile.stage("decode"):
            predictions = self.classifier.classify(candidates)
        return self._result_for(clip, predictions)

    def analyze_clips(
        self,
        clips: "list[JumpClip] | tuple[JumpClip, ...]",
        jobs: int = 1,
        profile: "ProfileReport | None" = None,
    ) -> "list[ClipResult]":
        """Batch-decode many clips with deterministic ordering.

        Args:
            jobs: worker processes; 1 (default) runs in-process, higher
                values fan clips out over a ``multiprocessing`` pool.
                Results always come back in input order regardless of
                completion order, so batch output is reproducible.
            profile: optional stage accumulator.  With ``jobs > 1`` the
                workers record their own per-stage reports, which are
                merged into ``profile`` on the way back — so the
                ``frontend`` / ``decode`` split survives pooled runs.
                Merged totals are CPU-seconds summed across workers and
                can exceed the pool's wall-clock.

        Returns:
            One :class:`~repro.core.results.ClipResult` per clip, in
            input order.

        Raises:
            ConfigurationError: ``jobs`` is not positive.
        """
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        clips = list(clips)
        if jobs == 1 and len(clips) > 1:
            return self._analyze_clips_batched(clips, profile)
        if jobs == 1 or len(clips) <= 1:
            return [self.analyze_clip(clip, profile) for clip in clips]
        import multiprocessing

        workers = min(jobs, len(clips))
        with multiprocessing.get_context().Pool(
            processes=workers, initializer=_pool_init, initargs=(self,)
        ) as pool:
            if profile is None:
                return pool.map(_pool_analyze, clips)
            pairs = pool.map(_pool_analyze_profiled, clips)
        for _, worker_profile in pairs:
            profile.merge(worker_profile)
        return [result for result, _ in pairs]

    def _analyze_clips_batched(
        self,
        clips: "list[JumpClip]",
        profile: "ProfileReport | None" = None,
    ) -> "list[ClipResult]":
        """Decode many clips through one batched tensor pass.

        The vision front-end still runs clip-at-a-time (it is per-clip
        work either way), but the DBN decode stacks every clip into the
        classifier's ``classify_batch`` kernels — bit-identical to
        per-clip :meth:`analyze_clip`, just fewer recursion passes.
        When profiled, ``frontend`` is recorded per clip and ``decode``
        once per batch call.
        """
        if profile is None:
            candidate_clips = [
                self.front_end.candidates_for_clip(clip.frames, clip.background)
                for clip in clips
            ]
            batches = self.classifier.classify_batch(candidate_clips)
        else:
            candidate_clips = []
            for clip in clips:
                with profile.stage("frontend"):
                    candidate_clips.append(
                        self.front_end.candidates_for_clip(
                            clip.frames, clip.background
                        )
                    )
            with profile.stage("decode"):
                batches = self.classifier.classify_batch(candidate_clips)
        return [
            self._result_for(clip, predictions)
            for clip, predictions in zip(clips, batches)
        ]

    def evaluate(
        self,
        clips: "list[JumpClip] | tuple[JumpClip, ...]",
        jobs: int = 1,
        profile: "ProfileReport | None" = None,
    ) -> EvaluationResult:
        """Decode and score a whole test set (the paper's §5 table)."""
        return EvaluationResult(
            clips=tuple(self.analyze_clips(clips, jobs=jobs, profile=profile))
        )
