"""The 22-pose / 4-stage taxonomy of the paper (§4).

The paper defines 22 poses across the four jump stages *before jumping*,
*jumping*, *in the air*, and *landing*, naming four of them explicitly:

* "standing & hand overlap with body"  (the reset pose for frame 1),
* "Standing & hand swung forward"      (the dominant class),
* "Knee and foot extended & Hand raised forward",
* "Waist bended & Hand raised forward".

The remaining 18 names are not listed in the paper; this module fills the
taxonomy with the intermediate postures a standing long jump passes
through, keeping the documented structural properties: similar poses occur
in both the *before jumping* and *landing* stages (distinguished only by
the stage flag, §4.1), and each pose belongs to exactly one stage.
"""

from __future__ import annotations

from enum import IntEnum


class Stage(IntEnum):
    """The four stages of a standing long jump (§4)."""

    BEFORE_JUMPING = 0
    JUMPING = 1
    IN_THE_AIR = 2
    LANDING = 3

    @property
    def label(self) -> str:
        return _STAGE_LABELS[self]


_STAGE_LABELS = {
    Stage.BEFORE_JUMPING: "before jumping",
    Stage.JUMPING: "jumping",
    Stage.IN_THE_AIR: "in the air",
    Stage.LANDING: "landing",
}


class Pose(IntEnum):
    """The 22 predefined poses.  Values are contiguous for array indexing."""

    # --- before jumping (8 poses) ---
    STANDING_HANDS_OVERLAP = 0
    STANDING_HANDS_RAISED_FORWARD = 1
    STANDING_HANDS_SWUNG_FORWARD = 2
    STANDING_HANDS_SWUNG_UP = 3
    STANDING_HANDS_SWUNG_BACKWARD = 4
    WAIST_BENT_HANDS_RAISED_FORWARD = 5
    KNEES_BENT_HANDS_BACKWARD = 6
    KNEES_BENT_HANDS_FORWARD = 7
    # --- jumping / take-off (3 poses) ---
    EXTENSION_HANDS_RAISED_FORWARD = 8
    TAKEOFF_BODY_FORWARD = 9
    TAKEOFF_ARMS_UP = 10
    # --- in the air (5 poses) ---
    AIRBORNE_BODY_EXTENDED = 11
    AIRBORNE_KNEES_TUCKED = 12
    AIRBORNE_PIKE = 13
    AIRBORNE_ARMS_DOWNSWING = 14
    AIRBORNE_LEGS_FORWARD = 15
    # --- landing (6 poses) ---
    TOUCHDOWN_KNEES_BENT = 16
    LANDING_WAIST_BENT_ARMS_FORWARD = 17
    LANDING_DEEP_SQUAT = 18
    LANDING_STANDING_UP = 19
    LANDING_STANDING_HANDS_DOWN = 20
    LANDING_STANDING_HANDS_OVERLAP = 21

    @property
    def stage(self) -> Stage:
        return POSE_STAGE[self]

    @property
    def label(self) -> str:
        return POSE_LABELS[self]


POSE_STAGE: "dict[Pose, Stage]" = {
    Pose.STANDING_HANDS_OVERLAP: Stage.BEFORE_JUMPING,
    Pose.STANDING_HANDS_RAISED_FORWARD: Stage.BEFORE_JUMPING,
    Pose.STANDING_HANDS_SWUNG_FORWARD: Stage.BEFORE_JUMPING,
    Pose.STANDING_HANDS_SWUNG_UP: Stage.BEFORE_JUMPING,
    Pose.STANDING_HANDS_SWUNG_BACKWARD: Stage.BEFORE_JUMPING,
    Pose.WAIST_BENT_HANDS_RAISED_FORWARD: Stage.BEFORE_JUMPING,
    Pose.KNEES_BENT_HANDS_BACKWARD: Stage.BEFORE_JUMPING,
    Pose.KNEES_BENT_HANDS_FORWARD: Stage.BEFORE_JUMPING,
    Pose.EXTENSION_HANDS_RAISED_FORWARD: Stage.JUMPING,
    Pose.TAKEOFF_BODY_FORWARD: Stage.JUMPING,
    Pose.TAKEOFF_ARMS_UP: Stage.JUMPING,
    Pose.AIRBORNE_BODY_EXTENDED: Stage.IN_THE_AIR,
    Pose.AIRBORNE_KNEES_TUCKED: Stage.IN_THE_AIR,
    Pose.AIRBORNE_PIKE: Stage.IN_THE_AIR,
    Pose.AIRBORNE_ARMS_DOWNSWING: Stage.IN_THE_AIR,
    Pose.AIRBORNE_LEGS_FORWARD: Stage.IN_THE_AIR,
    Pose.TOUCHDOWN_KNEES_BENT: Stage.LANDING,
    Pose.LANDING_WAIST_BENT_ARMS_FORWARD: Stage.LANDING,
    Pose.LANDING_DEEP_SQUAT: Stage.LANDING,
    Pose.LANDING_STANDING_UP: Stage.LANDING,
    Pose.LANDING_STANDING_HANDS_DOWN: Stage.LANDING,
    Pose.LANDING_STANDING_HANDS_OVERLAP: Stage.LANDING,
}

POSE_LABELS: "dict[Pose, str]" = {
    Pose.STANDING_HANDS_OVERLAP: "standing & hand overlap with body",
    Pose.STANDING_HANDS_RAISED_FORWARD: "standing & hand raised forward",
    Pose.STANDING_HANDS_SWUNG_FORWARD: "standing & hand swung forward",
    Pose.STANDING_HANDS_SWUNG_UP: "standing & hand swung up",
    Pose.STANDING_HANDS_SWUNG_BACKWARD: "standing & hand swung backward",
    Pose.WAIST_BENT_HANDS_RAISED_FORWARD: "waist bended & hand raised forward",
    Pose.KNEES_BENT_HANDS_BACKWARD: "knees bent & hand swung backward",
    Pose.KNEES_BENT_HANDS_FORWARD: "knees bent & hand swung forward",
    Pose.EXTENSION_HANDS_RAISED_FORWARD: "knee and foot extended & hand raised forward",
    Pose.TAKEOFF_BODY_FORWARD: "take-off & body leaned forward",
    Pose.TAKEOFF_ARMS_UP: "take-off & hand swung up",
    Pose.AIRBORNE_BODY_EXTENDED: "in air & body extended",
    Pose.AIRBORNE_KNEES_TUCKED: "in air & knees tucked",
    Pose.AIRBORNE_PIKE: "in air & waist piked",
    Pose.AIRBORNE_ARMS_DOWNSWING: "in air & hand swung downward",
    Pose.AIRBORNE_LEGS_FORWARD: "in air & legs extended forward",
    Pose.TOUCHDOWN_KNEES_BENT: "touch-down & knees bent",
    Pose.LANDING_WAIST_BENT_ARMS_FORWARD: "landing & waist bended & hand raised forward",
    Pose.LANDING_DEEP_SQUAT: "landing & deep squat",
    Pose.LANDING_STANDING_UP: "landing & standing up",
    Pose.LANDING_STANDING_HANDS_DOWN: "landing & standing & hand lowered",
    Pose.LANDING_STANDING_HANDS_OVERLAP: "landing & standing & hand overlap with body",
}

#: The pose every clip is reset to on frame 1 (§4.1).
INITIAL_POSE = Pose.STANDING_HANDS_OVERLAP

#: The dominant class §4.2 singles out when motivating ``Th_Pose``.
DOMINANT_POSE = Pose.STANDING_HANDS_SWUNG_FORWARD

NUM_POSES = len(Pose)
NUM_STAGES = len(Stage)


def poses_of_stage(stage: Stage) -> "list[Pose]":
    """All poses belonging to ``stage``, in enum order."""
    return [pose for pose in Pose if POSE_STAGE[pose] == stage]


def stage_can_follow(current: Stage, previous: Stage) -> bool:
    """Whether ``current`` may directly follow ``previous`` (§4).

    Stages progress monotonically: a stage can repeat or advance to the
    next stage, never go back — e.g. poses of *before jumping* and
    *landing* "cannot occur consecutively because it does not exist in
    real cases".
    """
    return current.value in (previous.value, previous.value + 1)


#: Canonical order a correct jump visits the stages in.
STAGE_ORDER: "tuple[Stage, ...]" = (
    Stage.BEFORE_JUMPING,
    Stage.JUMPING,
    Stage.IN_THE_AIR,
    Stage.LANDING,
)
