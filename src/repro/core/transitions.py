"""Temporal structure: pose and stage transition models (Figure 7(b)).

The DBN extends each per-pose network with two temporal parents: the
*previous pose* and the *jumping stage flag*.  Structurally:

* ``P(Stage_t | Stage_{t-1})`` — monotone: a stage may persist or advance
  to the next stage, never regress (§4: poses of *before jumping* and
  *landing* "cannot occur consecutively").
* ``P(Pose_t | Pose_{t-1}, Stage_t)`` — masked so a pose can only occur in
  its own stage.

Both tables are learned from ground-truth pose sequences with Dirichlet
smoothing applied *inside* the structural mask (zero-probability structure
is never smoothed away).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bayes.cpd import TabularCPD
from repro.bayes.dbn import TwoSliceDBN, previous_slice
from repro.bayes.factor import Factor
from repro.bayes.variables import Variable
from repro.core.poses import (
    INITIAL_POSE,
    NUM_POSES,
    NUM_STAGES,
    POSE_STAGE,
    Pose,
    Stage,
    stage_can_follow,
)
from repro.errors import ConfigurationError, LearningError, ModelError


def stage_mask() -> np.ndarray:
    """Boolean ``(prev_stage, stage)`` matrix of allowed stage moves."""
    mask = np.zeros((NUM_STAGES, NUM_STAGES), dtype=bool)
    for previous in Stage:
        for current in Stage:
            mask[previous, current] = stage_can_follow(current, previous)
    return mask


def pose_stage_mask() -> np.ndarray:
    """Boolean ``(stage, pose)`` compatibility matrix."""
    mask = np.zeros((NUM_STAGES, NUM_POSES), dtype=bool)
    for pose in Pose:
        mask[POSE_STAGE[pose], pose] = True
    return mask


@dataclass
class TransitionModel:
    """Learned, structurally-masked temporal CPDs.

    Attributes after :meth:`fit`:
        pose_table: ``(stage, prev_pose, pose)`` with
            ``pose_table[s, q, p] = P(Pose_t = p | Pose_{t-1} = q, Stage_t = s)``.
        stage_table: ``(prev_stage, stage)`` transition matrix.
    """

    alpha: float = 0.5
    _pose_table: "np.ndarray | None" = field(default=None, repr=False)
    _stage_table: "np.ndarray | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {self.alpha}")

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def fit(self, sequences: "list[list[Pose]]") -> "TransitionModel":
        """Count consecutive ``(pose, pose)`` pairs across training clips."""
        if not sequences or all(len(s) < 2 for s in sequences):
            raise LearningError("need at least one sequence of length >= 2")
        pose_counts = np.zeros((NUM_STAGES, NUM_POSES, NUM_POSES))
        stage_counts = np.zeros((NUM_STAGES, NUM_STAGES))
        for sequence in sequences:
            for previous, current in zip(sequence[:-1], sequence[1:]):
                stage = POSE_STAGE[current]
                prev_stage = POSE_STAGE[previous]
                if not stage_can_follow(stage, prev_stage):
                    raise LearningError(
                        f"training sequence violates stage monotonicity: "
                        f"{previous.name} -> {current.name}"
                    )
                pose_counts[stage, previous, current] += 1.0
                stage_counts[prev_stage, stage] += 1.0

        p_mask = pose_stage_mask()  # (stage, pose)
        smoothed = pose_counts + self.alpha * p_mask[:, None, :]
        sums = smoothed.sum(axis=2, keepdims=True)
        safe = np.where(sums > 0, sums, 1.0)
        table = smoothed / safe
        # Rows with zero mass (unseen prev-pose/stage combos) fall back to
        # uniform over the stage-compatible poses.
        fallback = p_mask / p_mask.sum(axis=1, keepdims=True)  # (stage, pose)
        table = np.where(sums > 0, table, fallback[:, None, :])
        self._pose_table = table

        s_mask = stage_mask()
        s_smoothed = stage_counts + self.alpha * s_mask
        s_sums = s_smoothed.sum(axis=1, keepdims=True)
        self._stage_table = s_smoothed / s_sums
        return self

    @property
    def is_fitted(self) -> bool:
        return self._pose_table is not None

    def _require_fit(self) -> tuple[np.ndarray, np.ndarray]:
        if self._pose_table is None or self._stage_table is None:
            raise ModelError("transition model is not fitted; call fit() first")
        return self._pose_table, self._stage_table

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def pose_table(self) -> np.ndarray:
        return self._require_fit()[0].copy()

    @property
    def stage_table(self) -> np.ndarray:
        return self._require_fit()[1].copy()

    def pose_distribution(self, previous: Pose, stage: Stage) -> np.ndarray:
        """``P(Pose_t | Pose_{t-1} = previous, Stage_t = stage)``."""
        pose_table, _ = self._require_fit()
        return pose_table[stage, previous].copy()

    def stage_distribution(self, previous: Stage) -> np.ndarray:
        """``P(Stage_t | Stage_{t-1} = previous)``."""
        _, stage_table = self._require_fit()
        return stage_table[previous].copy()

    # ------------------------------------------------------------------
    # DBN assembly (Fig 7(b) as an explicit 2-TBN)
    # ------------------------------------------------------------------
    def to_two_slice_dbn(self) -> TwoSliceDBN:
        """Assemble the joint (Stage, Pose) two-slice DBN.

        State order is ``(stage, pose)``; the prior pins frame 1 to the
        paper's reset: stage *before jumping*, pose "standing & hand
        overlap with body" (§4.1).
        """
        pose_table, stage_table = self._require_fit()
        stage_var = Variable("stage", tuple(s.name for s in Stage))
        pose_var = Variable("pose", tuple(p.name for p in Pose))

        prior_values = np.zeros((NUM_STAGES, NUM_POSES))
        prior_values[Stage.BEFORE_JUMPING, INITIAL_POSE] = 1.0
        prior = Factor((stage_var, pose_var), prior_values)

        stage_cpd = TabularCPD(
            stage_var, (previous_slice(stage_var),), stage_table.T
        )
        # pose CPD axes: (pose_t, pose_prev, stage_t).
        pose_cpd_table = np.transpose(pose_table, (2, 1, 0))
        pose_cpd = TabularCPD(
            pose_var, (previous_slice(pose_var), stage_var), pose_cpd_table
        )
        return TwoSliceDBN((stage_var, pose_var), prior, [stage_cpd, pose_cpd])
