"""ASCII rendering of binary images, skeletons, and key points.

The paper's figures are photographs and skeleton overlays; in a headless
reproduction the equivalent artefact is a deterministic text rendering.
Every figure-regeneration benchmark uses these helpers so the "figures" can
be eyeballed in a terminal or diffed in CI.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError


def render_binary(image: np.ndarray, on: str = "#", off: str = ".") -> str:
    """Render a 2-D binary array as text, one character per pixel.

    Rows map top-to-bottom to text lines; this matches image coordinates
    (row 0 at the top) so renderings line up with the paper's figures.
    """
    if image.ndim != 2:
        raise ImageError(f"expected a 2-D array, got shape {image.shape}")
    mask = image.astype(bool)
    return "\n".join("".join(on if v else off for v in row) for row in mask)


def render_layers(
    shape: tuple[int, int],
    layers: "list[tuple[np.ndarray, str]]",
    off: str = ".",
) -> str:
    """Render several binary layers onto one canvas.

    ``layers`` is a list of ``(mask, char)`` pairs painted in order, so later
    layers (e.g. key points) overwrite earlier ones (e.g. the skeleton).
    """
    canvas = np.full(shape, off, dtype="<U1")
    for mask, char in layers:
        if mask.shape != shape:
            raise ImageError(
                f"layer shape {mask.shape} does not match canvas shape {shape}"
            )
        canvas[mask.astype(bool)] = char
    return "\n".join("".join(row) for row in canvas)


def render_points(
    shape: tuple[int, int],
    points: "dict[str, tuple[int, int]]",
    base: "np.ndarray | None" = None,
) -> str:
    """Render labelled points (first letter of each label) over ``base``.

    ``points`` maps a label (e.g. ``"Head"``) to an ``(row, col)`` pixel.
    Points outside the canvas are ignored rather than raising, because the
    torso-midpoint arithmetic can land half a pixel outside a tight crop.
    """
    canvas = np.full(shape, ".", dtype="<U1")
    if base is not None:
        if base.shape != shape:
            raise ImageError(
                f"base shape {base.shape} does not match canvas shape {shape}"
            )
        canvas[base.astype(bool)] = "+"
    for label, (row, col) in points.items():
        r, c = int(round(row)), int(round(col))
        if 0 <= r < shape[0] and 0 <= c < shape[1]:
            canvas[r, c] = (label or "?")[0].upper()
    return "\n".join("".join(row) for row in canvas)


def downsample_for_display(image: np.ndarray, max_width: int = 78) -> np.ndarray:
    """Shrink a binary image by integer block-max pooling to fit a terminal.

    Max pooling (any pixel on → block on) keeps one-pixel-wide skeletons
    visible, which mean pooling would wash out.
    """
    if image.ndim != 2:
        raise ImageError(f"expected a 2-D array, got shape {image.shape}")
    if max_width < 1:
        raise ImageError(f"max_width must be >= 1, got {max_width}")
    height, width = image.shape
    factor = max(1, int(np.ceil(width / max_width)))
    pad_h = (-height) % factor
    pad_w = (-width) % factor
    padded = np.pad(image.astype(bool), ((0, pad_h), (0, pad_w)))
    blocks = padded.reshape(
        padded.shape[0] // factor, factor, padded.shape[1] // factor, factor
    )
    return blocks.any(axis=(1, 3))


def histogram_bar(counts: "dict[str, float]", width: int = 40) -> str:
    """Render a labelled horizontal bar chart (used in benchmark reports)."""
    if not counts:
        return "(empty)"
    peak = max(counts.values())
    label_width = max(len(k) for k in counts)
    lines = []
    for key, value in counts.items():
        bar = "" if peak <= 0 else "#" * int(round(width * value / peak))
        lines.append(f"{key.ljust(label_width)} | {bar} {value:g}")
    return "\n".join(lines)
