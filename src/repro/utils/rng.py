"""Seeded random-number plumbing.

All stochastic code in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps every
experiment reproducible: the same seed always produces the same dataset,
the same GA trajectory, and the same sampled Bayesian-network data.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a default-seeded generator (seed 0) rather than an
    entropy-seeded one so that "I forgot to pass a seed" never silently
    destroys reproducibility.
    """
    if seed is None:
        return np.random.default_rng(0)
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise ConfigurationError(
        f"seed must be an int, numpy Generator, or None, got {type(seed).__name__}"
    )


def derive_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for a numbered sub-stream.

    Used when one logical experiment spawns several stochastic components
    (e.g. one generator per video clip) that must not share state, so that
    adding a component never perturbs the draws of its siblings.
    """
    if stream < 0:
        raise ConfigurationError(f"stream index must be >= 0, got {stream}")
    seed = int(rng.integers(0, 2**63 - 1)) ^ (0x9E3779B97F4A7C15 * (stream + 1) % 2**63)
    return np.random.default_rng(seed)
