"""Small shared utilities: seeded RNG plumbing, validation, ASCII rendering."""

from repro.utils.rng import derive_rng, ensure_rng
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "derive_rng",
    "ensure_rng",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_type",
]
