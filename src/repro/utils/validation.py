"""Argument validators shared across the package.

These raise :class:`~repro.errors.ConfigurationError` with a message that
names the offending parameter, so configuration mistakes fail fast at the
public API boundary instead of deep inside numpy broadcasting.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> None:
    """Raise unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        if isinstance(expected, tuple):
            names = ", ".join(t.__name__ for t in expected)
        else:
            names = expected.__name__
        raise ConfigurationError(
            f"{name} must be of type {names}, got {type(value).__name__}"
        )


def check_positive(name: str, value: float, strict: bool = True) -> None:
    """Raise unless ``value`` is positive (or non-negative if not strict)."""
    if strict and not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")


def check_in_range(
    name: str, value: float, low: float, high: float, inclusive: bool = True
) -> None:
    """Raise unless ``low <= value <= high`` (or strict inequalities)."""
    if inclusive:
        if not (low <= value <= high):
            raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")
    else:
        if not (low < value < high):
            raise ConfigurationError(f"{name} must be in ({low}, {high}), got {value}")


def check_probability(name: str, value: float) -> None:
    """Raise unless ``value`` is a valid probability."""
    check_in_range(name, value, 0.0, 1.0)


def check_odd(name: str, value: int) -> None:
    """Raise unless ``value`` is an odd integer (window sizes, kernels)."""
    check_type(name, value, int)
    if value % 2 != 1:
        raise ConfigurationError(f"{name} must be odd, got {value}")
