"""CLI: generate, train, analyze, evaluate, report, serve, stats.

The subcommands mirror how a PE department would actually use the
system::

    python -m repro.cli generate --out clips/ --clips 5 --seed 3
    python -m repro.cli train --save model.npz --seed 0
    python -m repro.cli analyze clips/clip-00.npz --model model.npz
    python -m repro.cli evaluate --seed 0 --decode smooth
    python -m repro.cli report clips/clip-00.npz --model model.npz
    python -m repro.cli serve --model model.npz --clips-dir clips/ --jobs 4

``generate`` writes synthetic studio clips; ``train`` fits the system once
and saves it as a versioned model artifact; ``analyze`` prints the decoded
pose timeline of one clip; ``evaluate`` runs the full paper protocol;
``report`` produces the coaching report of §1's tutor scenario; ``serve``
drives the long-lived :class:`~repro.serving.service.JumpPoseService`
over a directory (or a stdin stream) of clips with no retraining, or —
with ``--port`` — binds the TCP network front so remote producers can
stream clips in over :class:`~repro.serving.client.JumpPoseClient`, or —
with ``--http-port`` — the HTTP/JSON gateway for producers that speak
HTTP (see ``docs/protocol.md``)::

    python -m repro.cli serve --model model.npz --port 7345 --jobs 4
    python -m repro.cli analyze clips/clip-00.npz --connect 127.0.0.1:7345

    python -m repro.cli serve --model model.npz --http-port 8080
    python -m repro.cli analyze clips/clip-00.npz --connect-http 127.0.0.1:8080

``serve --replicas N --port BASE`` scales the JPSE front out to N
replicas of the same artifact (see ``docs/scaling.md``), and a
comma-separated ``--connect`` shards through
:class:`~repro.serving.client.RoutingClient`::

    python -m repro.cli serve --model model.npz --replicas 3 --port 7345
    python -m repro.cli analyze clips/clip-00.npz \
        --connect 127.0.0.1:7345,127.0.0.1:7346,127.0.0.1:7347

``serve --supervised`` upgrades the fleet to real OS processes under
:class:`~repro.serving.supervisor.ReplicaSupervisor` — crashed or
unresponsive replicas are restarted with exponential backoff and
re-admitted after consecutive healthy probes — and ``--fault-spec``
arms deterministic fault injection for drills (``docs/scaling.md``)::

    python -m repro.cli serve --model model.npz --supervised \
        --replicas 3 --port 7345

``serve`` installs SIGTERM/SIGINT handlers on every bound front, so
``kill`` (or ``docker stop``) triggers the same graceful drain a
protocol shutdown request does.

``stats --connect`` queries a live fleet and prints the merged stats,
health, and pose-quality roll-up (``--metrics`` appends each replica's
Prometheus scrape; ``--json`` emits one machine-readable document), and
``--log-json PATH`` on ``serve``/``analyze`` appends structured JSON
events — requests with trace ids and stage timings, restarts,
failovers, armed faults — to a file (``docs/observability.md``)::

    python -m repro.cli stats --connect 127.0.0.1:7345,127.0.0.1:7346

``analyze`` and ``report`` accept ``--model`` to reuse a saved artifact;
without it they fall back to training a small throwaway model.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path

from repro.core.dbnclassifier import DECODE_MODES, ClassifierConfig
from repro.core.pipeline import AnalyzerSettings, JumpPoseAnalyzer
from repro.errors import ConfigurationError, TransportError
from repro.obs.events import configure_event_log, emit_event
from repro.perf.timing import ProfileReport, Timer
from repro.scoring.evaluator import JumpEvaluator
from repro.scoring.report import render_report
from repro.synth.dataset import make_clip, make_paper_protocol_dataset
from repro.synth.io import load_clip, save_clip
from repro.synth.variation import Fault


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Standing-long-jump pose estimation (Hsu et al., 2008)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write synthetic clips")
    generate.add_argument("--out", type=Path, required=True)
    generate.add_argument("--clips", type=int, default=3)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--frames", type=int, default=44)
    generate.add_argument(
        "--fault", action="append", default=[],
        choices=[fault.name for fault in Fault],
        help="inject a standard violation (repeatable)",
    )

    train = commands.add_parser(
        "train", help="train once and save a model artifact"
    )
    train.add_argument("--save", type=Path, required=True,
                       help="artifact path (.npz)")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--clips", type=int, default=0,
                       help="training clips (0 = the paper's 12)")
    train.add_argument("--decode", choices=DECODE_MODES, default="smooth")

    analyze = commands.add_parser("analyze", help="decode one saved clip")
    analyze.add_argument("clip", type=Path)
    analyze.add_argument("--model", type=Path, default=None,
                         help="saved artifact (skips retraining)")
    analyze.add_argument("--connect", metavar="HOST:PORT[,HOST:PORT...]",
                         default=None,
                         help="send the clip to a running `serve --port` "
                              "server instead of decoding locally; several "
                              "comma-separated replica endpoints route "
                              "through RoutingClient")
    analyze.add_argument("--policy", choices=["round-robin", "clip-hash"],
                         default="round-robin",
                         help="replica-picking policy with a multi-endpoint "
                              "--connect")
    analyze.add_argument("--connect-http", metavar="HOST:PORT", default=None,
                         help="send the clip to a running `serve --http-port` "
                              "gateway instead of decoding locally")
    analyze.add_argument("--timeout", type=float, default=30.0,
                         help="socket timeout in seconds (with --connect "
                              "or --connect-http)")
    analyze.add_argument("--log-json", type=Path, default=None,
                         help="append structured JSON events (one per "
                              "routed request) to this file")
    analyze.add_argument("--train-seed", type=int, default=0)
    analyze.add_argument("--train-clips", type=int, default=4)
    analyze.add_argument("--decode", choices=DECODE_MODES, default=None)

    evaluate = commands.add_parser("evaluate", help="run the paper protocol")
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--decode", choices=DECODE_MODES, default="smooth")
    evaluate.add_argument("--pilot", action="store_true",
                          help="4 train / 2 test clips instead of 12 / 3")
    evaluate.add_argument("--jobs", type=int, default=1,
                          help="worker processes for batch clip analysis")
    evaluate.add_argument("--profile", action="store_true",
                          help="print a per-stage wall-clock table")

    report = commands.add_parser("report", help="coaching report for a clip")
    report.add_argument("clip", type=Path)
    report.add_argument("--model", type=Path, default=None,
                        help="saved artifact (skips retraining)")
    report.add_argument("--student", default="the jumper")
    report.add_argument("--train-seed", type=int, default=0)
    report.add_argument("--train-clips", type=int, default=4)

    serve = commands.add_parser(
        "serve", help="serve clips from one saved artifact, no retraining"
    )
    serve.add_argument("--model", type=Path, required=True)
    serve.add_argument("--clips-dir", type=Path, default=None,
                       help="directory of .npz clips (default: stdin paths)")
    serve.add_argument("--port", type=int, default=None,
                       help="listen on this TCP port instead of serving "
                            "local clips (0 picks an ephemeral port)")
    serve.add_argument("--replicas", type=int, default=1,
                       help="run this many JumpPoseServer replicas of the "
                            "artifact (requires --port; replica i binds "
                            "port+i, or all-ephemeral with --port 0)")
    serve.add_argument("--supervised", action="store_true",
                       help="run --replicas as real OS processes under "
                            "ReplicaSupervisor: crash detection, backoff "
                            "restarts, health-probe re-admission (requires "
                            "--port; see docs/scaling.md)")
    serve.add_argument("--restart-budget", type=int, default=None,
                       help="with --supervised: restarts a replica may burn "
                            "before it is marked failed (default 5; the "
                            "budget refills after sustained health)")
    serve.add_argument("--replica-id", default=None,
                       help="name this server in stats/ping payloads (used "
                            "by the supervisor when spawning replicas; "
                            "single --port front only)")
    serve.add_argument("--fault-spec", default=None,
                       help="arm deterministic fault injection on the bound "
                            "front, e.g. 'crash@3' or 'slow=0.2~0.5:analyze' "
                            "(testing only; also read from $JPSE_FAULTS)")
    serve.add_argument("--fault-seed", type=int, default=None,
                       help="seed for probabilistic fault rules "
                            "(default 0; requires --fault-spec)")
    serve.add_argument("--http-port", type=int, default=None,
                       help="listen on this port with the HTTP/JSON gateway "
                            "instead of the JPSE socket front (0 picks an "
                            "ephemeral port)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for --port/--http-port "
                            "(default loopback)")
    serve.add_argument("--shutdown-token", default=None,
                       help="enable POST /v1/shutdown on the HTTP gateway, "
                            "guarded by this token (default: disabled)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="long-lived worker processes")
    serve.add_argument("--batch-size", type=int, default=4,
                       help="initial clips per worker task (micro-batching)")
    serve.add_argument("--no-adaptive-batch", action="store_true",
                       help="pin --batch-size instead of adapting it to "
                            "live p95 latency (deterministic benchmarking)")
    serve.add_argument("--decode", choices=DECODE_MODES, default=None,
                       help="override the artifact's decode mode")
    serve.add_argument("--log-json", type=Path, default=None,
                       help="append structured JSON events (requests, "
                            "restarts, failovers, armed faults) to this "
                            "file; with --supervised each replica logs to "
                            "a per-replica derivation (NAME.rI.jsonl)")

    stats = commands.add_parser(
        "stats", help="dump stats, health, and metrics from a live fleet"
    )
    stats.add_argument("--connect", metavar="HOST:PORT[,HOST:PORT...]",
                       required=True,
                       help="the JPSE endpoints of the replicas to query")
    stats.add_argument("--timeout", type=float, default=10.0,
                       help="socket timeout per replica in seconds")
    stats.add_argument("--metrics", action="store_true",
                       help="append each replica's Prometheus scrape text")
    stats.add_argument("--json", action="store_true",
                       help="emit one machine-readable JSON document "
                            "instead of the human-readable summary")
    return parser


def _train_small(seed: int, n_clips: int, decode: str) -> JumpPoseAnalyzer:
    lengths = tuple(44 if i % 2 == 0 else 43 for i in range(n_clips))
    dataset = make_paper_protocol_dataset(
        seed=seed, train_lengths=lengths, test_lengths=(45,)
    )
    settings = AnalyzerSettings(classifier=ClassifierConfig(decode=decode))
    return JumpPoseAnalyzer.train(dataset.train, settings)


def _analyzer_for(
    model: "Path | None",
    train_seed: int,
    train_clips: int,
    decode: "str | None",
) -> JumpPoseAnalyzer:
    """Load a saved artifact, or fall back to a small throwaway model."""
    if model is not None:
        from repro.serving.artifacts import load_analyzer

        return load_analyzer(model, decode=decode)
    print(f"no --model given; training on {train_clips} synthetic clips...")
    return _train_small(train_seed, train_clips, decode or "smooth")


def _command_generate(args: argparse.Namespace) -> int:
    args.out.mkdir(parents=True, exist_ok=True)
    faults = tuple(Fault[name] for name in args.fault)
    for index in range(args.clips):
        clip = make_clip(
            f"clip-{index:02d}",
            seed=args.seed + index,
            target_frames=args.frames,
            faults=faults,
        )
        path = save_clip(clip, args.out / f"clip-{index:02d}.npz")
        print(f"wrote {path} ({len(clip)} frames, faults={list(args.fault)})")
    return 0


def _command_train(args: argparse.Namespace) -> int:
    if args.clips:
        analyzer = _train_small(args.seed, args.clips, args.decode)
    else:
        dataset = make_paper_protocol_dataset(seed=args.seed)
        settings = AnalyzerSettings(
            classifier=ClassifierConfig(decode=args.decode)
        )
        analyzer = JumpPoseAnalyzer.train(dataset.train, settings)
    report = analyzer.models.report
    path = analyzer.save(args.save)
    print(
        f"trained on {report.used_frames}/{report.total_frames} usable frames; "
        f"saved artifact to {path}"
    )
    return 0


def _configure_event_log(args: argparse.Namespace) -> None:
    """Point the process-global JSON event log at ``--log-json``, if given."""
    log_json = getattr(args, "log_json", None)
    if log_json is not None:
        configure_event_log(log_json)


def _parse_endpoint(endpoint: str, flag: str = "--connect") -> "tuple[str, int]":
    """Split an ``analyze --connect[-http]`` HOST:PORT argument."""
    host, separator, port = endpoint.rpartition(":")
    if not separator or not host or not port.isdigit():
        raise ConfigurationError(
            f"{flag} expects HOST:PORT, got {endpoint!r}"
        )
    return host, int(port)


def _parse_endpoints(value: str, flag: str = "--connect") -> "list[tuple[str, int]]":
    """Split a comma-separated list of HOST:PORT replica endpoints."""
    endpoints = [entry.strip() for entry in value.split(",") if entry.strip()]
    if not endpoints:
        raise ConfigurationError(f"{flag} expects at least one HOST:PORT")
    return [_parse_endpoint(entry, flag) for entry in endpoints]


def _print_clip_result(result) -> None:
    for frame in result.frames:
        marker = " " if frame.is_correct else "*"
        decoded = (
            frame.predicted.label if frame.predicted is not None else "(unknown)"
        )
        print(f"{frame.index:4d}{marker} {decoded}")
    print(f"accuracy vs ground truth: {result.accuracy:.1%}")


def _command_analyze(args: argparse.Namespace) -> int:
    _configure_event_log(args)
    clip = load_clip(args.clip)
    if args.connect is not None and args.connect_http is not None:
        raise ConfigurationError(
            "--connect and --connect-http are mutually exclusive "
            "(pick one transport)"
        )
    if args.connect is not None or args.connect_http is not None:
        from repro.serving.client import (
            HttpJumpPoseClient,
            JumpPoseClient,
            RoutingClient,
        )

        flag = "--connect" if args.connect is not None else "--connect-http"
        # decoding happens server-side with the server's model: local
        # model/decode flags would be silently meaningless, so refuse them
        if args.model is not None or args.decode is not None:
            raise ConfigurationError(
                f"{flag} decodes on the server; --model/--decode do not "
                f"apply (configure them on the `serve` process instead)"
            )
        if args.connect is not None:
            endpoints = _parse_endpoints(args.connect)
            if len(endpoints) > 1:
                with RoutingClient(
                    endpoints, policy=args.policy, timeout_s=args.timeout
                ) as router:
                    result = router.analyze_clips([clip])[0]
                _print_clip_result(result)
                return 0
            host, port = endpoints[0]
            client_type = JumpPoseClient
        else:
            host, port = _parse_endpoint(args.connect_http, "--connect-http")
            client_type = HttpJumpPoseClient
        with client_type(host, port, timeout_s=args.timeout) as client:
            result = client.analyze_clips([clip])[0]
    else:
        analyzer = _analyzer_for(
            args.model, args.train_seed, args.train_clips, args.decode
        )
        result = analyzer.analyze_clip(clip)
    _print_clip_result(result)
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        raise ConfigurationError(f"--jobs must be >= 1, got {args.jobs}")
    if args.pilot:
        dataset = make_paper_protocol_dataset(
            seed=args.seed, train_lengths=(44, 43, 44, 43), test_lengths=(45, 45)
        )
    else:
        dataset = make_paper_protocol_dataset(seed=args.seed)
    settings = AnalyzerSettings(classifier=ClassifierConfig(decode=args.decode))
    profile = ProfileReport() if args.profile else None
    with Timer() as train_timer:
        analyzer = JumpPoseAnalyzer.train(dataset.train, settings)
    result = analyzer.evaluate(dataset.test, jobs=args.jobs, profile=profile)
    print(result.summary())
    if profile is not None:
        profile.add("train", train_timer.elapsed)
        print()
        print(profile.render())
    return 0


def _command_report(args: argparse.Namespace) -> int:
    clip = load_clip(args.clip)
    analyzer = _analyzer_for(args.model, args.train_seed, args.train_clips, None)
    predictions = analyzer.predict_frames(clip.frames, clip.background)
    evaluation = JumpEvaluator().evaluate([p.pose for p in predictions])
    print(render_report(evaluation, args.student))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    _configure_event_log(args)
    if args.port is not None and args.http_port is not None:
        raise ConfigurationError(
            "--port and --http-port are mutually exclusive (run two serve "
            "processes to offer both fronts)"
        )
    if args.shutdown_token is not None and args.http_port is None:
        # the JPSE front and local mode have no shutdown endpoint; a
        # silently ignored token would look armed without being so
        raise ConfigurationError(
            "--shutdown-token only applies to the HTTP gateway "
            "(add --http-port)"
        )
    if args.replicas < 1:
        raise ConfigurationError(
            f"--replicas must be >= 1, got {args.replicas}"
        )
    if args.fault_seed is not None and args.fault_spec is None:
        raise ConfigurationError(
            "--fault-seed only applies with --fault-spec "
            "(nothing to seed otherwise)"
        )
    if args.fault_spec is not None and args.port is None \
            and args.http_port is None:
        # local serve has no request seam to inject into; a silently
        # ignored spec would look armed without being so
        raise ConfigurationError(
            "--fault-spec needs a bound front (add --port or --http-port)"
        )
    if args.replica_id is not None and (
        args.supervised or args.replicas > 1 or args.port is None
    ):
        raise ConfigurationError(
            "--replica-id names a single --port server; replica fleets "
            "name their members r0..r{N-1} themselves"
        )
    if args.restart_budget is not None and not args.supervised:
        raise ConfigurationError(
            "--restart-budget only applies with --supervised "
            "(nothing restarts otherwise)"
        )
    if args.supervised:
        if args.http_port is not None:
            raise ConfigurationError(
                "--supervised runs JPSE replicas; it does not combine "
                "with --http-port"
            )
        if args.port is None:
            raise ConfigurationError(
                "--supervised requires --port (use --port 0 for "
                "all-ephemeral replica ports)"
            )
        return _serve_supervised(args)
    if args.replicas > 1:
        if args.fault_spec is not None:
            raise ConfigurationError(
                "--fault-spec with a replica fleet requires --supervised "
                "(in-process replicas share a fate; a crash fault would "
                "kill them all)"
            )
        if args.http_port is not None:
            raise ConfigurationError(
                "--replicas runs the JPSE front; it does not combine with "
                "--http-port (front a shared service instead)"
            )
        if args.port is None:
            raise ConfigurationError(
                "--replicas requires --port (use --port 0 for "
                "all-ephemeral replica ports)"
            )
        return _serve_cluster(args)
    if args.http_port is not None:
        return _serve_http(args)
    if args.port is not None:
        return _serve_network(args)
    return _serve_local(args)


def _reject_clips_dir_for(flag: str, args: argparse.Namespace) -> None:
    """Clips come from the network with a bound front; a silently ignored
    directory would look like a hung serve run."""
    if args.clips_dir is not None:
        raise ConfigurationError(
            f"--clips-dir does not apply with {flag} (clients send clips "
            f"over the network; drop {flag} to serve a local directory)"
        )


def _install_drain_handlers(request_shutdown) -> None:
    """SIGTERM/SIGINT run the same graceful drain a shutdown request does.

    ``docker stop``, a supervisor's terminate, and Ctrl-C all deliver
    signals, not protocol requests; without handlers the process dies
    mid-reply.  The handler only sets a flag (``request_shutdown`` is
    signal-safe on every front), so ``serve_forever`` returns and the
    ``finally`` block drains in-flight work as usual.  Installing
    handlers is skipped off the main thread (tests drive ``main()``
    from worker threads, where CPython forbids ``signal.signal``).
    """
    def _handler(signum: int, frame: object) -> None:
        request_shutdown()

    try:
        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)
    except ValueError:
        pass  # not the main thread; Ctrl-C still raises KeyboardInterrupt


def _fault_injector_for(args: argparse.Namespace):
    """Build the serve front's FaultInjector, or None when unarmed.

    ``--fault-spec`` wins; otherwise ``$JPSE_FAULTS`` is honoured (the
    supervisor arms per-replica faults through the environment).  Prints
    a loud notice when armed — an injector must never run silently.
    """
    from repro.serving.faults import FaultInjector

    if args.fault_spec is not None:
        injector = FaultInjector.from_spec(
            args.fault_spec, seed=args.fault_seed or 0
        )
    else:
        injector = FaultInjector.from_env()
    if injector is not None:
        spec = args.fault_spec or "$JPSE_FAULTS"
        print(f"FAULT INJECTION ARMED ({spec}) -- testing only")
        fields: "dict[str, object]" = {"spec": spec}
        if getattr(args, "replica_id", None) is not None:
            fields["replica_id"] = args.replica_id
        emit_event("fault_armed", **fields)
    return injector


def _serve_http(args: argparse.Namespace) -> int:
    """Bind the HTTP gateway; block until a shutdown request (or Ctrl-C)."""
    from repro.serving.http import JumpPoseHttpServer

    _reject_clips_dir_for("--http-port", args)
    gateway = JumpPoseHttpServer(
        args.model,
        host=args.host,
        port=args.http_port,
        jobs=args.jobs,
        batch_size=args.batch_size,
        decode=args.decode,
        adaptive_batch=not args.no_adaptive_batch,
        shutdown_token=args.shutdown_token,
        fault_injector=_fault_injector_for(args),
    )
    _install_drain_handlers(gateway.request_shutdown)
    try:
        gateway.start()
        host, port = gateway.address
        print(f"serving {args.model} on http://{host}:{port}/v1 "
              f"(jobs={args.jobs}, batch-size={args.batch_size}, "
              f"shutdown={'enabled' if args.shutdown_token else 'disabled'})")
        gateway.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        gateway.close()
        print()
        print(gateway.service.stats.render())
    return 0


def _serve_cluster(args: argparse.Namespace) -> int:
    """Run N server replicas; block until one is shut down (or Ctrl-C)."""
    from repro.serving.cluster import JumpPoseCluster

    _reject_clips_dir_for("--replicas", args)
    cluster = JumpPoseCluster(
        args.model,
        replicas=args.replicas,
        host=args.host,
        base_port=args.port,
        jobs=args.jobs,
        batch_size=args.batch_size,
        decode=args.decode,
        adaptive_batch=not args.no_adaptive_batch,
    )
    _install_drain_handlers(cluster.request_shutdown)
    try:
        cluster.start()
        endpoints = ",".join(
            f"{host}:{port}" for host, port in cluster.addresses
        )
        print(f"serving {args.model} on {args.replicas} replicas: "
              f"{endpoints} (jobs={args.jobs}, "
              f"batch-size={args.batch_size})")
        print(f"route clients with: analyze CLIP --connect {endpoints}")
        cluster.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        cluster.close()
        print()
        print(cluster.render_stats())
    return 0


def _serve_supervised(args: argparse.Namespace) -> int:
    """Run N replicas as supervised OS processes; block until a signal.

    Unlike ``_serve_cluster``'s in-process replicas, these can crash
    alone and come back: the supervisor restarts dead or unresponsive
    replicas with backoff and re-admits them into rotation after
    consecutive healthy probes (see ``docs/scaling.md``).
    """
    from repro.serving.supervisor import ReplicaSupervisor

    _reject_clips_dir_for("--supervised", args)
    fault_specs = None
    if args.fault_spec is not None:
        # the demo shape: every replica armed the same way (tests wanting
        # per-replica specs construct ReplicaSupervisor directly)
        fault_specs = {
            f"r{index}": args.fault_spec for index in range(args.replicas)
        }
        print(f"FAULT INJECTION ARMED ({args.fault_spec}) -- testing only")
        emit_event(
            "fault_armed", spec=args.fault_spec, replicas=args.replicas
        )
    extra: "dict[str, object]" = {}
    if args.restart_budget is not None:
        extra["restart_budget"] = args.restart_budget
    supervisor = ReplicaSupervisor(
        args.model,
        replicas=args.replicas,
        host=args.host,
        base_port=args.port,
        jobs=args.jobs,
        batch_size=args.batch_size,
        decode=args.decode,
        adaptive_batch=not args.no_adaptive_batch,
        fault_specs=fault_specs,
        fault_seed=args.fault_seed or 0,
        log_json=args.log_json,
        **extra,
    )
    _install_drain_handlers(supervisor.request_shutdown)
    try:
        supervisor.start()
        endpoints = ",".join(
            f"{host}:{port}" for host, port in supervisor.addresses
        )
        print(f"supervising {args.model} on {args.replicas} replica "
              f"processes: {endpoints} (jobs={args.jobs}, "
              f"batch-size={args.batch_size})")
        print(f"route clients with: analyze CLIP --connect {endpoints}")
        supervisor.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        supervisor.close()
        print()
        print(supervisor.render_health())
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    """Query a live fleet's JPSE endpoints; print the merged view.

    One ``stats`` + (optionally) one ``metrics`` request per endpoint;
    unreachable replicas are reported as ``failed`` rather than aborting
    the dump — an operator asking "how is the fleet?" needs an answer
    precisely when part of it is down.
    """
    from repro.serving.client import JumpPoseClient
    from repro.serving.cluster import merge_service_stats, rollup_health

    endpoints = _parse_endpoints(args.connect)
    replicas: "dict[str, dict[str, object]]" = {}
    scrapes: "dict[str, str]" = {}
    states: "list[str]" = []
    for host, port in endpoints:
        key = f"{host}:{port}"
        try:
            with JumpPoseClient(
                host, port, timeout_s=args.timeout, connect_retries=0
            ) as client:
                payload = client.stats()
                if args.metrics:
                    scrapes[key] = client.metrics()
        except TransportError as exc:
            states.append("failed")
            replicas[key] = {"error": str(exc)}
            continue
        states.append("healthy")
        replicas[key] = payload
    service_snapshots = {
        key: block["service"]
        for key, block in replicas.items()
        if isinstance(block.get("service"), dict)
    }
    merged = merge_service_stats(service_snapshots)
    rollup: "dict[str, object]" = {
        "status": rollup_health(states),
        "cluster": merged,
        "replicas": replicas,
    }
    if args.json:
        if scrapes:
            rollup["metrics"] = scrapes
        print(json.dumps(rollup, indent=2, sort_keys=True))
        return 0 if states.count("healthy") else 1
    quality = merged["quality"]
    print(
        f"fleet status: {rollup['status']} "
        f"({states.count('healthy')}/{len(endpoints)} replicas reachable)"
    )
    print(
        f"cluster: {merged['clips']} clips / {merged['frames']} frames "
        f"in {merged['wall_s']:.3f} busy-seconds"
    )
    print(
        f"quality: alert={quality['alert']} "
        f"flagged={quality['flagged_clips']}/{quality['clips']} clips, "
        f"{quality['pose_jumps']} pose jumps, "
        f"{quality['stage_violations']} stage violations, "
        f"{quality['low_likelihood_frames']} low-likelihood frames"
    )
    for key, block in replicas.items():
        if "error" in block:
            print(f"  {key}: UNREACHABLE ({block['error']})")
            continue
        service = block["service"]
        server = block["server"]
        rid = block.get("replica_id")
        name = f"{key} ({rid})" if rid else key
        print(
            f"  {name}: {service['clips']} clips, "
            f"{server['requests']} requests, {server['errors']} errors, "
            f"p95 latency {service['latency_p95_s']:.4f}s, "
            f"quality alert {service['quality']['alert']}"
        )
    for key, scrape in scrapes.items():
        print()
        print(f"# ---- metrics from {key} ----")
        print(scrape, end="")
    return 0 if states.count("healthy") else 1


def _serve_network(args: argparse.Namespace) -> int:
    """Bind a TCP front; block until a shutdown request (or Ctrl-C)."""
    from repro.serving.net import JumpPoseServer

    _reject_clips_dir_for("--port", args)

    server = JumpPoseServer(
        args.model,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        batch_size=args.batch_size,
        decode=args.decode,
        adaptive_batch=not args.no_adaptive_batch,
        replica_id=args.replica_id,
        fault_injector=_fault_injector_for(args),
    )
    _install_drain_handlers(server.request_shutdown)
    try:
        server.start()
        host, port = server.address
        print(f"serving {args.model} on {host}:{port} "
              f"(jobs={args.jobs}, batch-size={args.batch_size})")
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        print()
        print(server.service.stats.render())
    return 0


def _serve_local(args: argparse.Namespace) -> int:
    from repro.serving.service import JumpPoseService

    def emit(results) -> None:
        for result in results:
            print(
                f"{result.clip_id}: accuracy {result.accuracy:.1%} over "
                f"{len(result.frames)} frames "
                f"(unknown {result.unknown_rate:.1%})"
            )

    with JumpPoseService(
        args.model,
        jobs=args.jobs,
        batch_size=args.batch_size,
        decode=args.decode,
        adaptive_batch=not args.no_adaptive_batch,
    ) as service:
        if args.clips_dir is not None:
            emit(service.analyze_directory(args.clips_dir))
        else:
            # stdin streams clip paths, one per line; dispatch once every
            # worker can get a full micro-batch, so output keeps up with
            # input without idling the pool.
            flush_at = args.batch_size * args.jobs
            pending: "list[str]" = []
            for line in sys.stdin:
                path = line.strip()
                if not path:
                    continue
                pending.append(path)
                if len(pending) >= flush_at:
                    emit(service.analyze_paths(pending))
                    pending.clear()
            if pending:
                emit(service.analyze_paths(pending))
        print()
        print(service.stats.render())
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "train": _command_train,
    "analyze": _command_analyze,
    "evaluate": _command_evaluate,
    "report": _command_report,
    "serve": _command_serve,
    "stats": _command_stats,
}


def main(argv: "list[str] | None" = None) -> int:
    """Entry point (returns a process exit code)."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
