"""repro — a full reproduction of Hsu et al., "Pose Estimation for
Evaluating Standing Long Jumps via Dynamic Bayesian Networks"
(ICDCS Workshops 2008).

The package is organised bottom-up:

* substrates — :mod:`repro.geometry`, :mod:`repro.imaging`,
  :mod:`repro.thinning`, :mod:`repro.skeleton`, :mod:`repro.features`,
  :mod:`repro.bayes`, and the synthetic studio :mod:`repro.synth`;
* the paper's contribution — :mod:`repro.core` (22-pose taxonomy,
  per-pose BNs, the stage-flag DBN, end-to-end
  :class:`~repro.core.pipeline.JumpPoseAnalyzer`);
* applications — :mod:`repro.scoring` (movement evaluation and advice),
  :mod:`repro.baselines` (GA stick fitter, static BN, stage-free HMM),
  :mod:`repro.experiments` (every table/figure of the paper),
  :mod:`repro.serving` (model artifacts, streaming decoding, and the
  long-lived :class:`~repro.serving.service.JumpPoseService`).

Quickstart::

    from repro import JumpPoseAnalyzer, make_paper_protocol_dataset

    dataset = make_paper_protocol_dataset(seed=0)
    analyzer = JumpPoseAnalyzer.train(dataset.train)
    result = analyzer.evaluate(dataset.test)
    print(result.summary())
"""

from repro.core.pipeline import AnalyzerSettings, JumpPoseAnalyzer
from repro.core.dbnclassifier import ClassifierConfig, FramePrediction
from repro.core.poses import Pose, Stage
from repro.core.results import ClipResult, EvaluationResult
from repro.scoring.evaluator import JumpEvaluator
from repro.scoring.report import render_report
from repro.serving import (
    JumpPoseService,
    StreamingDecoder,
    StreamingSession,
    load_analyzer,
    save_analyzer,
)
from repro.synth.dataset import (
    JumpClip,
    JumpDataset,
    make_clip,
    make_paper_protocol_dataset,
)
from repro.synth.variation import Fault

__version__ = "1.0.0"

__all__ = [
    "AnalyzerSettings",
    "JumpPoseAnalyzer",
    "ClassifierConfig",
    "FramePrediction",
    "Pose",
    "Stage",
    "ClipResult",
    "EvaluationResult",
    "JumpEvaluator",
    "render_report",
    "JumpPoseService",
    "StreamingDecoder",
    "StreamingSession",
    "load_analyzer",
    "save_analyzer",
    "JumpClip",
    "JumpDataset",
    "make_clip",
    "make_paper_protocol_dataset",
    "Fault",
    "__version__",
]
