"""Performance instrumentation: timers, stage profiles, bench artifacts.

The perf harness has three pieces:

* :class:`Timer` — a tiny ``perf_counter`` context manager;
* :class:`ProfileReport` — named-stage accumulation with a text table and
  a machine-readable dict, used by ``JumpPoseAnalyzer.analyze_clips`` and
  the CLI's ``--profile`` flag;
* :func:`write_bench_json` — the ``BENCH_*.json`` artifact format emitted
  by ``benchmarks/test_perf_frontend.py`` so the naive-vs-fast timing
  trajectory is tracked PR over PR.
"""

from repro.perf.timing import (
    ProfileReport,
    Timer,
    best_of,
    write_bench_json,
)

__all__ = [
    "ProfileReport",
    "Timer",
    "best_of",
    "write_bench_json",
]
