"""Timers, stage profiles, and the ``BENCH_*.json`` artifact writer."""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from repro.errors import ConfigurationError


class Timer:
    """A ``perf_counter`` stopwatch usable as a context manager.

    >>> with Timer() as t:
    ...     work()
    >>> t.elapsed  # seconds
    """

    def __init__(self) -> None:
        self._start: "float | None" = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None


@dataclass
class StageStats:
    """Accumulated wall-clock for one named stage."""

    total: float = 0.0
    calls: int = 0

    @property
    def mean(self) -> float:
        return self.total / self.calls if self.calls else 0.0


@dataclass
class ProfileReport:
    """Named-stage wall-clock accumulation for a batch run.

    Stages are recorded with :meth:`stage` (a context manager) or
    :meth:`add`; :meth:`render` gives a human-readable table and
    :meth:`as_dict` the machine-readable form.
    """

    stages: "dict[str, StageStats]" = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        stats = self.stages.setdefault(name, StageStats())
        stats.total += seconds
        stats.calls += 1

    def stage(self, name: str) -> "_StageContext":
        return _StageContext(self, name)

    def merge(self, other: "ProfileReport") -> None:
        """Fold another report's stages into this one.

        Totals and call counts add per stage.  This is how per-worker
        reports from a multiprocessing pool are combined: the merged
        totals are CPU-seconds summed across workers, which with ``N``
        parallel workers can exceed the pool's wall-clock.
        """
        for name, stats in other.stages.items():
            mine = self.stages.setdefault(name, StageStats())
            mine.total += stats.total
            mine.calls += stats.calls

    @property
    def total(self) -> float:
        return sum(s.total for s in self.stages.values())

    def as_dict(self) -> "dict[str, dict[str, float]]":
        return {
            name: {"total_s": s.total, "calls": s.calls, "mean_s": s.mean}
            for name, s in self.stages.items()
        }

    def as_spans(self) -> "list[dict[str, object]]":
        """The stages as an ordered span list for structured log events.

        Same numbers as :meth:`as_dict`, but as a list of
        ``{"name", "total_s", "calls"}`` records in recording order —
        the shape the JSON event log (:mod:`repro.obs.events`) attaches
        to per-request events so one traced request carries its own
        stage timings.
        """
        return [
            {"name": name, "total_s": s.total, "calls": s.calls}
            for name, s in self.stages.items()
        ]

    def render(self) -> str:
        """Fixed-width table, one row per stage plus a total row."""
        if not self.stages:
            return "(no stages recorded)"
        width = max(len(name) for name in self.stages)
        lines = [f"{'stage':<{width}}  {'total':>9}  {'calls':>5}  {'mean':>9}"]
        for name, s in self.stages.items():
            lines.append(
                f"{name:<{width}}  {s.total:>8.3f}s  {s.calls:>5d}  {s.mean:>8.4f}s"
            )
        lines.append(f"{'TOTAL':<{width}}  {self.total:>8.3f}s")
        return "\n".join(lines)


class _StageContext:
    def __init__(self, report: ProfileReport, name: str) -> None:
        self._report = report
        self._name = name
        self._timer = Timer()

    def __enter__(self) -> Timer:
        return self._timer.__enter__()

    def __exit__(self, *exc_info: object) -> None:
        self._timer.__exit__(*exc_info)
        self._report.add(self._name, self._timer.elapsed)


def best_of(fn: "callable", repeats: int = 5) -> float:
    """Minimum wall-clock of ``repeats`` calls — the standard noise-robust
    point estimate for micro-benchmarks."""
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        with Timer() as timer:
            fn()
        best = min(best, timer.elapsed)
    return best


def write_bench_json(
    path: "str | Path",
    benchmarks: "dict[str, dict[str, float]]",
    context: "dict[str, object] | None" = None,
) -> Path:
    """Write a ``BENCH_*.json`` timing artifact.

    ``benchmarks`` maps a benchmark name to its measurements (seconds,
    speedup ratios, sizes — any scalar payload).  ``context`` carries
    run metadata (input shape, repeat count, ...).  The format is flat
    and append-friendly so successive PRs can be diffed or plotted.

    The top-level keys always describe the *latest* run; in addition,
    each write appends a ``{"at": <UTC ISO timestamp>, "benchmarks"}``
    entry to a ``history`` list carried over from the existing file (a
    missing or unreadable file starts a fresh history), so successive
    runs accumulate a perf trajectory in the artifact itself.
    """
    target = Path(path)
    history: "list[object]" = []
    try:
        previous = json.loads(target.read_text())
        carried = previous.get("history", [])
        if isinstance(carried, list):
            history = carried
    except (OSError, ValueError):
        pass
    history.append(
        {
            "at": datetime.now(timezone.utc).isoformat(),
            "benchmarks": benchmarks,
        }
    )
    payload = {
        "schema": "repro.perf/bench.v1",
        "context": context or {},
        "benchmarks": benchmarks,
        "history": history,
    }
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target
