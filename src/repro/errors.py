"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from runtime pipeline failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class ImageError(ReproError):
    """An image array has the wrong dtype, shape, or value range."""


class SkeletonError(ReproError):
    """Skeleton extraction failed (empty silhouette, disconnected graph...)."""


class FeatureError(ReproError):
    """Key-point extraction or feature encoding failed."""


class ModelError(ReproError):
    """A Bayesian-network model is structurally invalid."""


class InferenceError(ReproError):
    """Exact inference could not be carried out on a model."""


class LearningError(ReproError):
    """Parameter learning received unusable training data."""


class DatasetError(ReproError):
    """Synthetic dataset generation was asked for an impossible protocol."""


class ProtocolError(ReproError):
    """Bytes on the serving wire violate the framing protocol."""

    def __init__(self, message: str, code: str = "protocol",
                 recoverable: bool = False) -> None:
        super().__init__(message)
        #: short machine-readable reason, echoed in structured error replies
        self.code = code
        #: True when the offending frame was fully consumed, so the same
        #: connection can keep serving; False when framing is lost and the
        #: connection must be closed
        self.recoverable = recoverable


class TransportError(ReproError):
    """A serving connection could not be established or timed out."""


class RemoteError(ReproError):
    """The serving peer reported a structured error for a request."""

    def __init__(self, message: str, code: str = "server-error",
                 http_status: "int | None" = None) -> None:
        super().__init__(message)
        #: short machine-readable reason, as reported by the server
        self.code = code
        #: the HTTP status of the reply, when the peer was the HTTP
        #: gateway; None for errors from the JPSE socket front
        self.http_status = http_status


class ScoringError(ReproError):
    """Jump evaluation could not interpret a pose sequence."""
