"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from runtime pipeline failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class ImageError(ReproError):
    """An image array has the wrong dtype, shape, or value range."""


class SkeletonError(ReproError):
    """Skeleton extraction failed (empty silhouette, disconnected graph...)."""


class FeatureError(ReproError):
    """Key-point extraction or feature encoding failed."""


class ModelError(ReproError):
    """A Bayesian-network model is structurally invalid."""


class InferenceError(ReproError):
    """Exact inference could not be carried out on a model."""


class LearningError(ReproError):
    """Parameter learning received unusable training data."""


class DatasetError(ReproError):
    """Synthetic dataset generation was asked for an impossible protocol."""


class ScoringError(ReproError):
    """Jump evaluation could not interpret a pose sequence."""
